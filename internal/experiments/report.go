package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"quickr"
	"quickr/internal/workload"
)

// QueryBenchReport is the per-query entry of a BenchReport: the error
// and gain metrics of one query plus the full instrumented run report
// (per-operator counters) of its approximate execution.
type QueryBenchReport struct {
	ID               string  `json:"id"`
	Sampled          bool    `json:"sampled"`
	Unapproximable   bool    `json:"unapproximable"`
	GainMachineHours float64 `json:"gain_machine_hours"`
	GainRuntime      float64 `json:"gain_runtime"`
	GainIntermediate float64 `json:"gain_intermediate"`
	GainShuffled     float64 `json:"gain_shuffled"`
	MissedGroups     float64 `json:"missed_groups"`
	AggError         float64 `json:"agg_error"`

	RateChecks   []RateCheckReport `json:"rate_checks"`
	RateFailures int               `json:"rate_failures"`

	// PeakInflightBytes is the streaming executor's worst per-operator
	// in-flight footprint for the approximate run; PeakMaterializedBytes
	// is the same query re-executed with batching disabled (whole
	// partitions materialized between operators). CI asserts the
	// streaming total stays strictly below the materialized total.
	PeakInflightBytes     float64 `json:"peak_inflight_bytes"`
	PeakMaterializedBytes float64 `json:"peak_materialized_bytes"`

	// Approx is the instrumented run report of the Quickr plan,
	// including the per-operator execution counters.
	Approx *quickr.RunReport `json:"approx"`
}

// RateCheckReport is the JSON view of one sampler pass-rate invariant.
type RateCheckReport struct {
	Op        string  `json:"op"`
	Type      string  `json:"type"`
	P         float64 `json:"p"`
	Seen      int64   `json:"seen"`
	Passed    int64   `json:"passed"`
	Rate      float64 `json:"rate"`
	Tolerance float64 `json:"tolerance"`
	OK        bool    `json:"ok"`
	Note      string  `json:"note,omitempty"`
}

// BenchReport is the machine-readable result of one quickr-bench
// experiment, written as BENCH_<experiment>.json and consumed by
// cmd/benchcheck in CI.
type BenchReport struct {
	Experiment  string             `json:"experiment"`
	ScaleFactor float64            `json:"scale_factor"`
	Queries     []QueryBenchReport `json:"queries"`
}

// BuildBenchReport runs the given queries through the harness and
// collects the per-operator breakdowns.
func BuildBenchReport(env *Env, queries []workload.Query, experiment string, sf float64) (*BenchReport, error) {
	rep := &BenchReport{Experiment: experiment, ScaleFactor: sf}
	for _, out := range RunSuite(env, queries) {
		if out.Err != nil {
			return nil, out.Err
		}
		q := QueryBenchReport{
			ID:               out.Query.ID,
			Sampled:          out.Sampled,
			Unapproximable:   out.Unapproximable,
			GainMachineHours: out.GainMachineHours,
			GainRuntime:      out.GainRuntime,
			GainIntermediate: out.GainIntermediate,
			GainShuffled:     out.GainShuffled,
			MissedGroups:     out.MissedGroupsFull,
			AggError:         out.AggErrorFull,
			RateChecks:       []RateCheckReport{},
			Approx:           out.Approx.RunReport(out.Query.SQL, true),
		}
		q.PeakInflightBytes = out.Approx.PeakInFlightBytes
		// Re-run with batching disabled to record the materializing
		// baseline's footprint next to the streaming one.
		env.Eng.SetBatchSize(-1)
		mat, err := env.Eng.ExecApprox(out.Query.SQL)
		env.Eng.SetBatchSize(0)
		if err != nil {
			return nil, err
		}
		q.PeakMaterializedBytes = mat.PeakInFlightBytes
		for _, c := range out.RateChecks {
			q.RateChecks = append(q.RateChecks, RateCheckReport{
				Op: c.Op, Type: c.Type, P: c.P,
				Seen: c.Seen, Passed: c.Passed, Rate: c.Rate,
				Tolerance: c.Tolerance, OK: c.OK, Note: c.Note,
			})
			if !c.OK {
				q.RateFailures++
			}
		}
		rep.Queries = append(rep.Queries, q)
	}
	return rep, nil
}

// Write serializes the report as BENCH_<experiment>.json under dir and
// returns the written path.
func (r *BenchReport) Write(dir string) (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", r.Experiment))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// SmokeQueries is the tiny query subset the CI smoke-bench runs: one
// query per suite, covering a join, a plain aggregate and the log
// workload.
func SmokeQueries() []workload.Query {
	pick := func(qs []workload.Query, n int) []workload.Query {
		if len(qs) < n {
			n = len(qs)
		}
		return qs[:n]
	}
	var out []workload.Query
	out = append(out, pick(workload.TPCDSQueries(), 2)...)
	out = append(out, pick(workload.TPCHQueries(), 1)...)
	out = append(out, pick(workload.OtherQueries(), 1)...)
	return out
}
