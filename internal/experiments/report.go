package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"quickr"
	"quickr/internal/table"
	"quickr/internal/workload"
)

// QueryBenchReport is the per-query entry of a BenchReport: the error
// and gain metrics of one query plus the full instrumented run report
// (per-operator counters) of its approximate execution.
type QueryBenchReport struct {
	ID               string  `json:"id"`
	Sampled          bool    `json:"sampled"`
	Unapproximable   bool    `json:"unapproximable"`
	GainMachineHours float64 `json:"gain_machine_hours"`
	GainRuntime      float64 `json:"gain_runtime"`
	GainIntermediate float64 `json:"gain_intermediate"`
	GainShuffled     float64 `json:"gain_shuffled"`
	MissedGroups     float64 `json:"missed_groups"`
	AggError         float64 `json:"agg_error"`

	// ResultRows and ResultHash fingerprint the approximate run's
	// result: a SHA-256 over the exact (kind-tagged, bit-precise) row
	// values and group estimates, in result order. CI's columnar oracle
	// job diffs these across executor modes — row-at-a-time and
	// vectorized runs of the same query must produce identical hashes.
	ResultRows int    `json:"result_rows"`
	ResultHash string `json:"result_hash"`

	// WarmHash is the same fingerprint taken from a second execution
	// while the engine's sample cache holds the first run's materialized
	// sampler output (set only when the bench runs with -sample-cache).
	// BuildBenchReport fails outright if it differs from ResultHash: a
	// warm replay must be bit-identical to the cold run that populated
	// the cache.
	WarmHash string `json:"warm_hash,omitempty"`

	RateChecks   []RateCheckReport `json:"rate_checks"`
	RateFailures int               `json:"rate_failures"`

	// PeakInflightBytes is the streaming executor's worst per-operator
	// in-flight footprint for the approximate run; PeakMaterializedBytes
	// is the same query re-executed with batching disabled (whole
	// partitions materialized between operators). CI asserts the
	// streaming total stays strictly below the materialized total.
	PeakInflightBytes     float64 `json:"peak_inflight_bytes"`
	PeakMaterializedBytes float64 `json:"peak_materialized_bytes"`

	// Approx is the instrumented run report of the Quickr plan,
	// including the per-operator execution counters.
	Approx *quickr.RunReport `json:"approx"`
}

// RateCheckReport is the JSON view of one sampler pass-rate invariant.
type RateCheckReport struct {
	Op        string  `json:"op"`
	Type      string  `json:"type"`
	P         float64 `json:"p"`
	Seen      int64   `json:"seen"`
	Passed    int64   `json:"passed"`
	Rate      float64 `json:"rate"`
	Tolerance float64 `json:"tolerance"`
	OK        bool    `json:"ok"`
	Note      string  `json:"note,omitempty"`
}

// BenchReport is the machine-readable result of one quickr-bench
// experiment, written as BENCH_<experiment>.json and consumed by
// cmd/benchcheck in CI.
type BenchReport struct {
	Experiment  string             `json:"experiment"`
	ScaleFactor float64            `json:"scale_factor"`
	Queries     []QueryBenchReport `json:"queries"`
	Concurrency *ConcurrencyReport `json:"concurrency,omitempty"`
}

// ConcurrencyReport compares the engine's throughput on the same job
// list executed serially and with concurrent submitters sharing one
// engine (worker pool, admission gate, plan cache). Cores records the
// machine's parallelism so CI only asserts a concurrent speedup where
// one is physically possible.
type ConcurrencyReport struct {
	Workers       int     `json:"workers"`
	Cores         int     `json:"cores"`
	Jobs          int     `json:"jobs"`
	SerialQPS     float64 `json:"serial_qps"`
	ConcurrentQPS float64 `json:"concurrent_qps"`
	Speedup       float64 `json:"speedup"`
}

// MeasureConcurrency runs every query (approx mode) reps times serially
// and then again with the given number of concurrent submitters, and
// reports queries-per-second for both. One warmup execution per
// distinct plan precedes the timed passes so both run against a warm
// plan cache and the comparison isolates execution concurrency.
func MeasureConcurrency(env *Env, queries []workload.Query, workers, reps int) (*ConcurrencyReport, error) {
	var jobs []string
	for r := 0; r < reps; r++ {
		for _, q := range queries {
			jobs = append(jobs, q.SQL)
		}
	}
	for _, q := range queries { // warm the plan cache for both passes
		if _, err := env.Eng.ExecApprox(q.SQL); err != nil {
			return nil, fmt.Errorf("%s warmup: %w", q.ID, err)
		}
	}
	pass := func(conc int) (float64, error) {
		if conc < 1 {
			conc = 1
		}
		start := time.Now()
		var firstErr error
		var mu sync.Mutex
		var wg sync.WaitGroup
		next := make(chan string)
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sql := range next {
					if _, err := env.Eng.ExecApprox(sql); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}
			}()
		}
		for _, sql := range jobs {
			next <- sql
		}
		close(next)
		wg.Wait()
		if firstErr != nil {
			return 0, firstErr
		}
		return float64(len(jobs)) / time.Since(start).Seconds(), nil
	}
	serial, err := pass(1)
	if err != nil {
		return nil, err
	}
	concurrent, err := pass(workers)
	if err != nil {
		return nil, err
	}
	rep := &ConcurrencyReport{
		Workers:       workers,
		Cores:         runtime.NumCPU(),
		Jobs:          len(jobs),
		SerialQPS:     serial,
		ConcurrentQPS: concurrent,
	}
	if serial > 0 {
		rep.Speedup = concurrent / serial
	}
	return rep, nil
}

// appendExact appends a kind-tagged, bit-precise encoding of v:
// unlike Value.Key, floats never collapse onto integers, so any
// cross-executor difference in kind or bits changes the hash.
func appendExact(b []byte, v table.Value) []byte {
	switch v.Kind() {
	case table.KindNull:
		return append(b, 'n')
	case table.KindInt:
		return binary.LittleEndian.AppendUint64(append(b, 'i'), uint64(v.Int()))
	case table.KindFloat:
		return binary.LittleEndian.AppendUint64(append(b, 'f'), math.Float64bits(v.Float()))
	case table.KindString:
		s := v.Str()
		b = binary.LittleEndian.AppendUint64(append(b, 's'), uint64(len(s)))
		return append(b, s...)
	case table.KindBool:
		if v.Bool() {
			return append(b, 'b', 1)
		}
		return append(b, 'b', 0)
	}
	return append(b, '?')
}

// resultHash fingerprints a query result: every row value (exact bits,
// in order), then every group estimate's key, values, standard errors
// and sample support.
func resultHash(res *quickr.Result) string {
	h := sha256.New()
	var buf []byte
	for _, row := range res.InternalRows {
		buf = buf[:0]
		for _, v := range row {
			buf = appendExact(buf, v)
		}
		h.Write(append(buf, 0xff))
	}
	for _, g := range res.Estimates {
		buf = append(buf[:0], 0xfe)
		for _, k := range g.Key {
			buf = appendAnyExact(buf, k)
		}
		for _, v := range g.Values {
			buf = appendAnyExact(buf, v)
		}
		for _, se := range g.StdErr {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(se))
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(g.SampleRows))
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// appendAnyExact encodes the result API's any-typed values (the
// rowToAny image of a table.Value) with the same exactness.
func appendAnyExact(b []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(b, 'n')
	case int64:
		return binary.LittleEndian.AppendUint64(append(b, 'i'), uint64(x))
	case float64:
		return binary.LittleEndian.AppendUint64(append(b, 'f'), math.Float64bits(x))
	case string:
		b = binary.LittleEndian.AppendUint64(append(b, 's'), uint64(len(x)))
		return append(b, x...)
	case bool:
		if x {
			return append(b, 'b', 1)
		}
		return append(b, 'b', 0)
	default:
		return append(b, fmt.Sprintf("?%v", x)...)
	}
}

// BuildBenchReport runs the given queries through the harness and
// collects the per-operator breakdowns.
func BuildBenchReport(env *Env, queries []workload.Query, experiment string, sf float64) (*BenchReport, error) {
	rep := &BenchReport{Experiment: experiment, ScaleFactor: sf}
	outcomes := RunSuite(env, queries)
	// With a sample cache configured, RunSuite's approximate runs have
	// populated it; replay every query once while the cache is still
	// intact (the per-query loop below bumps the config epoch) and
	// require bit-identical answers. Evicted entries just re-run the lazy
	// path, which must produce the same bits anyway.
	warmHashes := map[string]string{}
	if env.Eng.SampleCacheBudget() > 0 {
		for _, out := range outcomes {
			if out.Err != nil {
				continue
			}
			warm, err := env.Eng.ExecApprox(out.Query.SQL)
			if err != nil {
				return nil, fmt.Errorf("%s warm replay: %w", out.Query.ID, err)
			}
			cold, wh := resultHash(out.Approx), resultHash(warm)
			if wh != cold {
				return nil, fmt.Errorf("%s: warm replay hash %s differs from cold run %s — cached sampler output is not bit-identical",
					out.Query.ID, wh[:12], cold[:12])
			}
			warmHashes[out.Query.ID] = wh
		}
	}
	for _, out := range outcomes {
		if out.Err != nil {
			return nil, out.Err
		}
		q := QueryBenchReport{
			ID:               out.Query.ID,
			Sampled:          out.Sampled,
			Unapproximable:   out.Unapproximable,
			GainMachineHours: out.GainMachineHours,
			GainRuntime:      out.GainRuntime,
			GainIntermediate: out.GainIntermediate,
			GainShuffled:     out.GainShuffled,
			MissedGroups:     out.MissedGroupsFull,
			AggError:         out.AggErrorFull,
			RateChecks:       []RateCheckReport{},
			ResultRows:       len(out.Approx.InternalRows),
			ResultHash:       resultHash(out.Approx),
			WarmHash:         warmHashes[out.Query.ID],
			Approx:           out.Approx.RunReport(out.Query.SQL, true),
		}
		q.PeakInflightBytes = out.Approx.PeakInFlightBytes
		// Re-run with batching disabled to record the materializing
		// baseline's footprint next to the streaming one, then restore
		// the configured batch size (not necessarily the default).
		prevBatch := env.Eng.BatchSize()
		env.Eng.SetBatchSize(-1)
		mat, err := env.Eng.ExecApprox(out.Query.SQL)
		env.Eng.SetBatchSize(prevBatch)
		if err != nil {
			return nil, err
		}
		q.PeakMaterializedBytes = mat.PeakInFlightBytes
		for _, c := range out.RateChecks {
			q.RateChecks = append(q.RateChecks, RateCheckReport{
				Op: c.Op, Type: c.Type, P: c.P,
				Seen: c.Seen, Passed: c.Passed, Rate: c.Rate,
				Tolerance: c.Tolerance, OK: c.OK, Note: c.Note,
			})
			if !c.OK {
				q.RateFailures++
			}
		}
		rep.Queries = append(rep.Queries, q)
	}
	conc, err := MeasureConcurrency(env, queries, 8, 3)
	if err != nil {
		return nil, err
	}
	rep.Concurrency = conc
	return rep, nil
}

// Write serializes the report as BENCH_<experiment>.json under dir and
// returns the written path.
func (r *BenchReport) Write(dir string) (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", r.Experiment))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// SmokeQueries is the tiny query subset the CI smoke-bench runs: one
// query per suite, covering a join, a plain aggregate and the log
// workload.
func SmokeQueries() []workload.Query {
	pick := func(qs []workload.Query, n int) []workload.Query {
		if len(qs) < n {
			n = len(qs)
		}
		return qs[:n]
	}
	var out []workload.Query
	out = append(out, pick(workload.TPCDSQueries(), 2)...)
	out = append(out, pick(workload.TPCHQueries(), 1)...)
	out = append(out, pick(workload.OtherQueries(), 1)...)
	return out
}
