package experiments

// Seed-sweep statistical coverage: over many sampler seeds, the error
// bounds the engine reports (±CI95 from the Horvitz–Thompson standard
// errors) must actually cover the ground truth computed by the naive
// reference evaluator, and the number of groups the sampled plan drops
// must stay within Proposition 4's prediction. This is the statistical
// acceptance gate for the approximation machinery: a biased estimator,
// a broken variance formula or a seed-dependent sampler bug all surface
// here as coverage collapse.

import (
	"math"
	"testing"

	"quickr"
	"quickr/internal/accuracy"
	"quickr/internal/lplan"
	"quickr/internal/refimpl"
	"quickr/internal/table"
	"quickr/internal/workload"
)

const (
	sweepSeeds = 200
	// minSupport excludes micro-groups from CI coverage counting: with
	// only a handful of sampled rows the variance estimate itself is too
	// noisy for the normal-approximation interval the engine reports
	// (the paper's error bars likewise assume CLT-scale support).
	minSupport = 10
	// coverageFloor is the acceptance bar: CI95 is a nominal 95%
	// interval; 90% leaves room for estimated-variance shrinkage on
	// moderate groups.
	coverageFloor = 0.90
)

// truthGroup is one ground-truth group from the reference evaluator.
type truthGroup struct {
	values  []float64 // aggregate values (NaN where non-numeric)
	support float64   // exact-run rows feeding the group
}

// sweepQuery is one workload query admitted to the sweep, with its
// ground truth and sampler facts.
type sweepQuery struct {
	q       workload.Query
	keyCols int
	truth   map[string]truthGroup
	sampler lplan.SamplerType
	p       float64
}

func samplerTypeOf(name string) lplan.SamplerType {
	switch name {
	case "DISTINCT":
		return lplan.SamplerDistinct
	case "UNIVERSE":
		return lplan.SamplerUniverse
	case "PASSTHROUGH":
		return lplan.SamplerPassThrough
	}
	return lplan.SamplerUniform
}

// pickSweepQueries selects workload queries that (a) actually sample,
// (b) have no LIMIT (the full answer is the comparable unit), and
// (c) produce group-cols-then-aggregates output matching the reference
// evaluator row shape.
func pickSweepQueries(t *testing.T, env *Env, want int) []sweepQuery {
	t.Helper()
	var picked []sweepQuery
	for _, q := range workload.TPCDSQueries() {
		if q.HasLimit {
			continue
		}
		exact, err := env.Eng.Exec(q.SQL)
		if err != nil {
			t.Fatalf("%s exact: %v", q.ID, err)
		}
		if len(exact.Estimates) == 0 {
			continue
		}
		approx, err := env.Eng.ExecApprox(q.SQL)
		if err != nil {
			t.Fatalf("%s approx: %v", q.ID, err)
		}
		if !approx.Sampled || approx.Unapproximable {
			continue
		}
		info, err := env.Eng.Plan(q.SQL, true)
		if err != nil || info.RootSampler == "" || info.EffectiveP <= 0 {
			continue
		}

		// Ground truth from the reference evaluator, keyed like the
		// engine's group estimates (group cols first, then aggregates).
		plan, err := env.Eng.BoundPlan(q.SQL)
		if err != nil {
			t.Fatalf("%s bind: %v", q.ID, err)
		}
		refRows, err := refimpl.Run(env.Eng.Catalog(), plan)
		if err != nil {
			t.Fatalf("%s refimpl: %v", q.ID, err)
		}
		keyCols := len(exact.Estimates[0].Key)
		if keyCols+len(exact.Estimates[0].Values) != len(exact.Columns) {
			continue // select list reorders keys/aggregates; skip
		}
		support := map[string]float64{}
		for _, g := range exact.Estimates {
			support[keyString(g.Key, keyCols)] = float64(g.SampleRows)
		}
		truth := map[string]truthGroup{}
		ok := true
		for _, r := range refRows {
			anyRow := make([]any, len(r))
			for i, v := range r {
				switch v.Kind() {
				case table.KindNull:
					anyRow[i] = nil
				case table.KindInt:
					anyRow[i] = v.Int()
				case table.KindFloat:
					anyRow[i] = v.Float()
				case table.KindString:
					anyRow[i] = v.Str()
				case table.KindBool:
					anyRow[i] = v.Bool()
				}
			}
			key := keyString(anyRow[:keyCols], keyCols)
			sup, known := support[key]
			if !known {
				ok = false // executor and refimpl disagree on groups
				break
			}
			tg := truthGroup{support: sup}
			for _, v := range anyRow[keyCols:] {
				f, isNum := toFloat(v)
				if !isNum {
					f = math.NaN()
				}
				tg.values = append(tg.values, f)
			}
			truth[key] = tg
		}
		if !ok || len(truth) != len(exact.Estimates) {
			continue
		}
		picked = append(picked, sweepQuery{
			q:       q,
			keyCols: keyCols,
			truth:   truth,
			sampler: samplerTypeOf(info.RootSampler),
			p:       info.EffectiveP,
		})
		if len(picked) == want {
			break
		}
	}
	if len(picked) < want {
		t.Fatalf("only %d sweep-eligible sampled queries, want %d", len(picked), want)
	}
	return picked
}

// sweepStats accumulates one query's observations over the seed sweep.
type sweepStats struct {
	covered, pairs   int     // CI-coverage observations
	missed, groupObs int     // missed-group observations
	expectedMissed   float64 // Proposition 4 prediction
	prunedParts      int64   // partitions skipped by partition selection
}

// sweepQueryOverSeeds runs one query for every sweep seed and counts
// CI95 coverage and missed groups against its ground truth.
func sweepQueryOverSeeds(t *testing.T, env *Env, sq sweepQuery) sweepStats {
	t.Helper()
	var st sweepStats
	for seed := uint64(1); seed <= sweepSeeds; seed++ {
		env.Eng.SetSeed(seed)
		approx, err := env.Eng.ExecApprox(sq.q.SQL)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		observeSweepRun(&st, sq, approx)
	}
	return st
}

// observeSweepRun folds one approximate run into the sweep statistics.
func observeSweepRun(st *sweepStats, sq sweepQuery, approx *quickr.Result) {
	st.prunedParts += approx.PartitionsPruned
	got := map[string]quickr.GroupEstimate{}
	for _, g := range approx.Estimates {
		got[keyString(g.Key, sq.keyCols)] = g
	}
	for key, tg := range sq.truth {
		st.groupObs++
		// Proposition 4: miss probability for this group's
		// support under the plan's root-equivalent sampler.
		// stratCoversGroup=false and |G(C)|=support are the
		// conservative fallbacks (they never under-predict
		// misses for uniform/distinct plans).
		st.expectedMissed += accuracy.MissProbability(sq.sampler, sq.p, tg.support, false, 0)
		g, ok := got[key]
		if !ok {
			st.missed++
			continue
		}
		if float64(g.SampleRows) < minSupport {
			continue
		}
		for i, truthVal := range tg.values {
			if i >= len(g.Values) || math.IsNaN(truthVal) {
				continue
			}
			est, isNum := toFloat(g.Values[i])
			if !isNum || i >= len(g.CI95) || g.CI95[i] <= 0 {
				continue // MIN/MAX/COUNT DISTINCT carry no bars
			}
			st.pairs++
			if math.Abs(est-truthVal) <= g.CI95[i] {
				st.covered++
			}
		}
	}
}

// checkSweepStats applies the acceptance bars to one query's sweep.
func checkSweepStats(t *testing.T, sq sweepQuery, st sweepStats) {
	t.Helper()
	if st.pairs == 0 {
		t.Fatalf("no coverage observations (all groups below support %d?)", minSupport)
	}
	cov := float64(st.covered) / float64(st.pairs)
	t.Logf("%s: coverage %.3f over %d pairs; missed %d/%d groups (Prop 4 expects ≤ %.1f); %d partitions pruned",
		sq.q.ID, cov, st.pairs, st.missed, st.groupObs, st.expectedMissed, st.prunedParts)
	if cov < coverageFloor {
		t.Errorf("CI95 covered truth in %.1f%% of %d observations, want ≥ %.0f%%",
			100*cov, st.pairs, 100*coverageFloor)
	}
	// Missed groups: observed count stays within the Prop 4
	// prediction plus 4σ binomial slack (variance ≤ mean).
	bound := st.expectedMissed + 4*math.Sqrt(st.expectedMissed+1) + 2
	if sq.sampler != lplan.SamplerUniverse && float64(st.missed) > bound {
		t.Errorf("missed %d groups over %d seeds; Proposition 4 bounds this by %.1f",
			st.missed, sweepSeeds, bound)
	}
}

func TestSeedSweepCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep runs nightly; skipped in -short")
	}
	env := NewTPCDSEnv(0.05)
	queries := pickSweepQueries(t, env, 5)

	for _, sq := range queries {
		sq := sq
		t.Run(sq.q.ID, func(t *testing.T) {
			checkSweepStats(t, sq, sweepQueryOverSeeds(t, env, sq))
		})
	}
	env.Eng.SetSeed(0)
}

// TestSeedSweepCoveragePruned is the partition-selection variant of the
// sweep: with pruning enabled, the reported CI95 bars (now including
// the partition-level cluster-variance term) must still cover the
// ground truth at the same ≥90% floor, and the pass must actually skip
// partitions on at least one swept query — otherwise the sweep is not
// exercising the inflated-weight estimators at all. It runs at a larger
// scale factor than the base sweep because pruning eligibility needs
// multi-partition fact tables with a sampler directly over the scan.
func TestSeedSweepCoveragePruned(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep runs nightly; skipped in -short")
	}
	env := NewTPCDSEnv(0.2)
	queries := pickSweepQueries(t, env, 5)
	env.Eng.SetPrune(true)
	defer env.Eng.SetPrune(false)

	var totalPruned int64
	for _, sq := range queries {
		sq := sq
		t.Run(sq.q.ID, func(t *testing.T) {
			st := sweepQueryOverSeeds(t, env, sq)
			totalPruned += st.prunedParts
			checkSweepStats(t, sq, st)
		})
	}
	if totalPruned == 0 {
		t.Error("no swept query pruned any partition; the sweep did not exercise partition selection")
	}
	env.Eng.SetSeed(0)
}
