// Package experiments regenerates every table and figure from the
// paper's evaluation (§5) on the synthetic workloads: it runs each
// benchmark query through the Baseline plan (no samplers) and the
// Quickr plan (ASALQA), measures the paper's performance metrics
// (machine-hours, runtime, intermediate data, shuffled data) and error
// metrics (missed groups, aggregation error, with and without LIMIT),
// and renders the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"

	"quickr"
	"quickr/internal/data"
	"quickr/internal/workload"
)

// Env bundles an engine loaded with the benchmark datasets.
type Env struct {
	Eng *quickr.Engine
	DS  *data.TPCDS
}

// NewTPCDSEnv builds an engine with the TPC-DS-like schema at the given
// scale factor.
func NewTPCDSEnv(sf float64) *Env {
	cfg := data.DefaultTPCDS()
	cfg.ScaleFactor = sf
	ds := data.GenerateTPCDS(cfg)
	eng := quickr.New()
	for name, t := range ds.Tables {
		eng.RegisterStored(t, ds.PKs[name]...)
	}
	return &Env{Eng: eng, DS: ds}
}

// NewFullEnv additionally loads the TPC-H-like and log datasets.
func NewFullEnv(sf float64) *Env {
	env := NewTPCDSEnv(sf)
	hcfg := data.DefaultTPCH()
	hcfg.ScaleFactor = sf
	h := data.GenerateTPCH(hcfg)
	for name, t := range h.Tables {
		env.Eng.RegisterStored(t, h.PKs[name]...)
	}
	env.Eng.RegisterStored(data.Logs(int(20000*sf), 777, 8))
	return env
}

// Outcome is the measured result of one query under both plans.
type Outcome struct {
	Query workload.Query

	Exact  *quickr.Result
	Approx *quickr.Result
	Err    error

	// Gains are Baseline/Quickr ratios (>1 means Quickr wins).
	GainMachineHours float64
	GainRuntime      float64
	GainIntermediate float64
	GainShuffled     float64

	// MissedGroups is the fraction of exact answer rows (post-LIMIT)
	// whose group is absent from the approximate answer; Full uses the
	// pre-LIMIT aggregate output.
	MissedGroups     float64
	MissedGroupsFull float64
	// AggError is the mean relative error of aggregate values over
	// matched groups (post-LIMIT answer); Full uses the pre-LIMIT
	// aggregate output.
	AggError     float64
	AggErrorFull float64

	// Sampled and Unapproximable echo the plan decision.
	Sampled        bool
	Unapproximable bool

	// RateChecks are the sampler pass-rate invariants measured on the
	// approximate run (empty when the plan had no samplers).
	RateChecks []RateCheck
}

var limitRe = regexp.MustCompile(`(?is)\s+ORDER\s+BY\s+[^()]*?\s+LIMIT\s+\d+\s*$|\s+LIMIT\s+\d+\s*$`)

// stripLimit removes a trailing ORDER BY ... LIMIT clause, producing
// the paper's "full answer" variant.
func stripLimit(sqlText string) string {
	return limitRe.ReplaceAllString(sqlText, "")
}

// RunQuery executes one query under both plans and measures errors.
func RunQuery(env *Env, q workload.Query) Outcome {
	out := Outcome{Query: q}
	exact, err := env.Eng.Exec(q.SQL)
	if err != nil {
		out.Err = fmt.Errorf("%s exact: %w", q.ID, err)
		return out
	}
	approx, err := env.Eng.ExecApprox(q.SQL)
	if err != nil {
		out.Err = fmt.Errorf("%s approx: %w", q.ID, err)
		return out
	}
	out.Exact, out.Approx = exact, approx
	out.Sampled = approx.Sampled
	out.Unapproximable = approx.Unapproximable
	out.RateChecks = CheckSamplerRates(approx)

	out.GainMachineHours = ratio(exact.Metrics.MachineHours, approx.Metrics.MachineHours)
	out.GainRuntime = ratio(exact.Metrics.Runtime, approx.Metrics.Runtime)
	out.GainIntermediate = ratio(exact.Metrics.IntermediateBytes, approx.Metrics.IntermediateBytes)
	out.GainShuffled = ratio(exact.Metrics.ShuffledBytes, approx.Metrics.ShuffledBytes)

	// Full-answer comparison from the top aggregate's estimates.
	out.MissedGroupsFull, out.AggErrorFull = compareEstimates(exact, approx)

	// Post-LIMIT comparison from the final rows.
	keyCols := 0
	if len(exact.Estimates) > 0 {
		keyCols = len(exact.Estimates[0].Key)
	}
	if keyCols > len(exact.Columns) {
		keyCols = len(exact.Columns)
	}
	out.MissedGroups, out.AggError = compareRows(exact, approx, keyCols)
	return out
}

func ratio(base, quickr float64) float64 {
	if quickr <= 0 {
		return 1
	}
	return base / quickr
}

func keyString(vals []any, n int) string {
	var b strings.Builder
	for i := 0; i < n && i < len(vals); i++ {
		fmt.Fprintf(&b, "%v\x00", vals[i])
	}
	return b.String()
}

// compareEstimates measures missed groups and aggregate error on the
// full (pre-LIMIT) aggregate output.
func compareEstimates(exact, approx *quickr.Result) (missed, aggErr float64) {
	if len(exact.Estimates) == 0 {
		return 0, 0
	}
	approxBy := map[string][]any{}
	for _, g := range approx.Estimates {
		approxBy[keyString(g.Key, len(g.Key))] = g.Values
	}
	var missCnt int
	var errSum float64
	var errN int
	for _, g := range exact.Estimates {
		av, ok := approxBy[keyString(g.Key, len(g.Key))]
		if !ok {
			missCnt++
			continue
		}
		e, n := relErrors(g.Values, av)
		errSum += e
		errN += n
	}
	missed = float64(missCnt) / float64(len(exact.Estimates))
	if errN > 0 {
		aggErr = errSum / float64(errN)
	}
	return missed, aggErr
}

// compareRows measures the same on the final (post-LIMIT) rows.
func compareRows(exact, approx *quickr.Result, keyCols int) (missed, aggErr float64) {
	if len(exact.Rows) == 0 {
		return 0, 0
	}
	if keyCols == 0 && len(exact.Rows) == 1 {
		e, n := relErrorsAny(exact.Rows[0], approx.Rows)
		if n > 0 {
			return 0, e / float64(n)
		}
		return 0, 0
	}
	approxBy := map[string][]any{}
	for _, r := range approx.Rows {
		approxBy[keyString(r, keyCols)] = r
	}
	var missCnt int
	var errSum float64
	var errN int
	for _, r := range exact.Rows {
		ar, ok := approxBy[keyString(r, keyCols)]
		if !ok {
			missCnt++
			continue
		}
		e, n := relErrors(r[keyCols:], ar[keyCols:])
		errSum += e
		errN += n
	}
	missed = float64(missCnt) / float64(len(exact.Rows))
	if errN > 0 {
		aggErr = errSum / float64(errN)
	}
	return missed, aggErr
}

func relErrorsAny(exactRow []any, approxRows [][]any) (float64, int) {
	if len(approxRows) == 0 {
		return 0, 0
	}
	return relErrors(exactRow, approxRows[0])
}

// relErrors sums relative errors over paired numeric values.
func relErrors(exact, approx []any) (sum float64, n int) {
	for i := 0; i < len(exact) && i < len(approx); i++ {
		ev, eok := toFloat(exact[i])
		av, aok := toFloat(approx[i])
		if !eok || !aok {
			continue
		}
		if ev == 0 {
			if av == 0 {
				n++
			}
			continue
		}
		sum += math.Abs(av-ev) / math.Abs(ev)
		n++
	}
	return sum, n
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

// RunSuite runs every query and returns the outcomes in order.
func RunSuite(env *Env, queries []workload.Query) []Outcome {
	out := make([]Outcome, 0, len(queries))
	for _, q := range queries {
		out = append(out, RunQuery(env, q))
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	idx := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return s[lo]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median is the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDF returns sorted values paired with cumulative fractions, for the
// paper's CDF figures.
func CDF(xs []float64) (vals, fracs []float64) {
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	fr := make([]float64, len(s))
	for i := range s {
		fr[i] = float64(i+1) / float64(len(s))
	}
	return s, fr
}
