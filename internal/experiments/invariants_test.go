package experiments

import (
	"testing"

	"quickr/internal/workload"
)

// A small sampled query must yield at least one sampler rate check and
// every check must hold: the executed pass fraction tracks the
// configured p within the type-specific tolerance.
func TestSamplerRateInvariants(t *testing.T) {
	env := NewTPCDSEnv(0.25)
	res, err := env.Eng.ExecApprox(
		"SELECT ss_store_sk, SUM(ss_sales_price) FROM store_sales GROUP BY ss_store_sk")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sampled {
		t.Skip("query not sampled at this scale")
	}
	checks := CheckSamplerRates(res)
	if len(checks) == 0 {
		t.Fatal("sampled plan produced no rate checks")
	}
	for _, c := range checks {
		t.Log(c)
		if !c.OK {
			t.Errorf("invariant failed: %s", c)
		}
		if c.Seen > 0 && c.Rate <= 0 {
			t.Errorf("sampler %s saw %d rows but passed none", c.Op, c.Seen)
		}
	}
}

// Exact plans have no samplers and therefore no checks.
func TestRateChecksEmptyForExact(t *testing.T) {
	env := NewTPCDSEnv(0.1)
	res, err := env.Eng.Exec("SELECT COUNT(*) FROM store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if got := CheckSamplerRates(res); len(got) != 0 {
		t.Fatalf("exact plan produced %d rate checks", len(got))
	}
	if got := CheckSamplerRates(nil); got != nil {
		t.Fatal("nil result should produce no checks")
	}
}

// The harness must attach rate checks to sampled outcomes.
func TestOutcomeCarriesRateChecks(t *testing.T) {
	env := NewTPCDSEnv(0.25)
	qs := workload.TPCDSQueries()
	for _, q := range qs {
		out := RunQuery(env, q)
		if out.Err != nil || !out.Sampled {
			continue
		}
		if len(out.RateChecks) == 0 {
			t.Fatalf("%s: sampled outcome has no rate checks", q.ID)
		}
		return
	}
	t.Skip("no sampled query at this scale")
}
