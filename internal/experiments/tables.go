package experiments

import (
	"fmt"
	"strings"
	"time"

	"quickr"
	"quickr/internal/workload"
)

// Table3Result is the TPC-DS query-characteristics table (paper
// Table 3), computed from the optimized plans and exact runs of our
// suite.
type Table3Result struct {
	Percentiles []float64
	Rows        map[string][]float64
	Order       []string
}

// Table3 computes the characteristics of the TPC-DS-like suite.
func Table3(env *Env) (*Table3Result, error) {
	return characteristics(env, workload.TPCDSQueries())
}

func characteristics(env *Env, queries []workload.Query) (*Table3Result, error) {
	type rec struct {
		passes, totalFirst, aggs, joins, depth, ops, qcsqvs, qcs, udfs float64
	}
	var recs []rec
	for _, q := range queries {
		st, err := env.Eng.Analyze(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		res, err := env.Eng.Exec(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		tf := 1.0
		if res.Metrics.FirstPassTime > 0 {
			tf = res.Metrics.Runtime / res.Metrics.FirstPassTime
		}
		recs = append(recs, rec{
			passes:     res.Metrics.Passes,
			totalFirst: tf,
			aggs:       float64(st.Aggregations),
			joins:      float64(st.Joins),
			depth:      float64(st.Depth),
			ops:        float64(st.Operators),
			qcsqvs:     float64(st.QCSPlusQVS),
			qcs:        float64(st.QCS),
			udfs:       float64(st.UDFs),
		})
	}
	ps := []float64{10, 25, 50, 75, 90, 95}
	col := func(f func(rec) float64) []float64 {
		xs := make([]float64, len(recs))
		for i, r := range recs {
			xs[i] = f(r)
		}
		out := make([]float64, len(ps))
		for i, p := range ps {
			out[i] = Percentile(xs, p)
		}
		return out
	}
	return &Table3Result{
		Percentiles: ps,
		Rows: map[string][]float64{
			"# of passes":           col(func(r rec) float64 { return r.passes }),
			"Total/First pass time": col(func(r rec) float64 { return r.totalFirst }),
			"# Aggregation Ops.":    col(func(r rec) float64 { return r.aggs }),
			"# Joins":               col(func(r rec) float64 { return r.joins }),
			"depth of operators":    col(func(r rec) float64 { return r.depth }),
			"# operators":           col(func(r rec) float64 { return r.ops }),
			"size of QCS + QVS":     col(func(r rec) float64 { return r.qcsqvs }),
			"size of QCS":           col(func(r rec) float64 { return r.qcs }),
			"# user-defined func.":  col(func(r rec) float64 { return r.udfs }),
		},
		Order: []string{
			"# of passes", "Total/First pass time", "# Aggregation Ops.", "# Joins",
			"depth of operators", "# operators", "size of QCS + QVS", "size of QCS",
			"# user-defined func.",
		},
	}, nil
}

// Render prints the table.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: characteristics of the TPC-DS-like queries used in evaluation\n")
	fmt.Fprintf(&b, "%-24s", "Metric")
	for _, p := range r.Percentiles {
		fmt.Fprintf(&b, "%7.0fth", p)
	}
	b.WriteByte('\n')
	for _, name := range r.Order {
		fmt.Fprintf(&b, "%-24s", name)
		for _, v := range r.Rows[name] {
			fmt.Fprintf(&b, "%9.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table4Result compares query-optimization times (paper Table 4).
type Table4Result struct {
	Percentiles []float64
	Baseline    []float64 // seconds
	Quickr      []float64 // seconds
}

// Table4 measures optimization latency for both optimizers, median of
// three runs per query as in the paper.
func Table4(env *Env) (*Table4Result, error) {
	queries := workload.TPCDSQueries()
	var base, quick []float64
	for _, q := range queries {
		b, err := medianOptTime(env.Eng, q.SQL, false)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		qq, err := medianOptTime(env.Eng, q.SQL, true)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		base = append(base, b)
		quick = append(quick, qq)
	}
	ps := []float64{10, 25, 50, 75, 90, 95}
	res := &Table4Result{Percentiles: ps}
	for _, p := range ps {
		res.Baseline = append(res.Baseline, Percentile(base, p))
		res.Quickr = append(res.Quickr, Percentile(quick, p))
	}
	return res, nil
}

func medianOptTime(eng *quickr.Engine, sql string, approx bool) (float64, error) {
	var times []float64
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := eng.Plan(sql, approx); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start).Seconds())
	}
	return Median(times), nil
}

// Render prints the table.
func (r *Table4Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 4: query optimization times (seconds)\n")
	fmt.Fprintf(&b, "%-18s", "Metric")
	for _, p := range r.Percentiles {
		fmt.Fprintf(&b, "%9.0fth", p)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "Baseline QO time")
	for _, v := range r.Baseline {
		fmt.Fprintf(&b, "%11.5f", v)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "Quickr QO time")
	for _, v := range r.Quickr {
		fmt.Fprintf(&b, "%11.5f", v)
	}
	b.WriteByte('\n')
	return b.String()
}

// Table5Result reports samplers per query and sampler-source distance
// (paper Table 5).
type Table5Result struct {
	// SamplersPerQuery[n] is the fraction of queries with n samplers
	// (index 5 aggregates 5+).
	SamplersPerQuery []float64
	// SourceDistance[d] is the fraction of samplers at d IO passes from
	// extraction (index 4 aggregates 4+); distance 0 = first pass.
	SourceDistance []float64
	TotalQueries   int
	TotalSamplers  int
}

// Table5 computes sampler counts and locations over the suite.
func Table5(env *Env) (*Table5Result, error) {
	res := &Table5Result{
		SamplersPerQuery: make([]float64, 6),
		SourceDistance:   make([]float64, 5),
	}
	for _, q := range workload.TPCDSQueries() {
		info, err := env.Eng.Plan(q.SQL, true)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		res.TotalQueries++
		n := len(info.Samplers)
		if n > 5 {
			n = 5
		}
		res.SamplersPerQuery[n]++
		for _, d := range samplerDistances(info.Physical) {
			if d > 4 {
				d = 4
			}
			res.SourceDistance[d]++
			res.TotalSamplers++
		}
	}
	for i := range res.SamplersPerQuery {
		res.SamplersPerQuery[i] /= float64(res.TotalQueries)
	}
	if res.TotalSamplers > 0 {
		for i := range res.SourceDistance {
			res.SourceDistance[i] /= float64(res.TotalSamplers)
		}
	}
	return res, nil
}

// samplerDistances parses the physical plan text and, for each Sample
// operator (excluding pass-throughs), counts exchanges strictly below
// it — the IO passes between extraction and the sampler.
func samplerDistances(physical string) []int {
	lines := strings.Split(physical, "\n")
	indent := func(s string) int {
		n := 0
		for strings.HasPrefix(s[n:], "  ") {
			n += 2
		}
		return n / 2
	}
	var out []int
	for i, line := range lines {
		t := strings.TrimSpace(line)
		if !strings.HasPrefix(t, "Sample ") || strings.Contains(t, "PASSTHROUGH") {
			continue
		}
		base := indent(line)
		dist := 0
		for j := i + 1; j < len(lines); j++ {
			if strings.TrimSpace(lines[j]) == "" {
				continue
			}
			if indent(lines[j]) <= base {
				break
			}
			if strings.HasPrefix(strings.TrimSpace(lines[j]), "Exchange") {
				dist++
			}
		}
		out = append(out, dist)
	}
	return out
}

// Render prints the table.
func (r *Table5Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 5: number of samplers per query and their locations\n")
	fmt.Fprintf(&b, "%-24s", "Value")
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&b, "%6d", i)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-24s", "Samplers per query")
	for _, v := range r.SamplersPerQuery {
		fmt.Fprintf(&b, "%5.0f%%", 100*v)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-24s", "Sampler-Source dist.")
	for _, v := range r.SourceDistance {
		fmt.Fprintf(&b, "%5.0f%%", 100*v)
	}
	b.WriteByte('\n')
	return b.String()
}

// Table7Result reports sampler-type usage frequency (paper Table 7).
type Table7Result struct {
	// Distribution is the share of each type among all samplers.
	Distribution map[string]float64
	// QueriesWith is the fraction of queries using at least one sampler
	// of each type.
	QueriesWith map[string]float64
}

// Table7 computes sampler-type frequencies over the suite.
func Table7(env *Env) (*Table7Result, error) {
	dist := map[string]float64{}
	with := map[string]float64{}
	total := 0.0
	queries := workload.TPCDSQueries()
	for _, q := range queries {
		info, err := env.Eng.Plan(q.SQL, true)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		seen := map[string]bool{}
		for _, s := range info.Samplers {
			dist[s.Type]++
			total++
			seen[s.Type] = true
		}
		for t := range seen {
			with[t]++
		}
	}
	for t := range dist {
		dist[t] /= total
	}
	for t := range with {
		with[t] /= float64(len(queries))
	}
	return &Table7Result{Distribution: dist, QueriesWith: with}, nil
}

// Render prints the table.
func (r *Table7Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 7: frequency of use of various samplers\n")
	fmt.Fprintf(&b, "%-42s%10s%10s%10s\n", "Metric", "UNIFORM", "DISTINCT", "UNIVERSE")
	fmt.Fprintf(&b, "%-42s%9.0f%%%9.0f%%%9.0f%%\n", "Distribution across samplers",
		100*r.Distribution["UNIFORM"], 100*r.Distribution["DISTINCT"], 100*r.Distribution["UNIVERSE"])
	fmt.Fprintf(&b, "%-42s%9.0f%%%9.0f%%%9.0f%%\n", "Queries that use at least 1 of this type",
		100*r.QueriesWith["UNIFORM"], 100*r.QueriesWith["DISTINCT"], 100*r.QueriesWith["UNIVERSE"])
	return b.String()
}

// Table9Result compares plan characteristics across benchmarks (paper
// Table 9).
type Table9Result struct {
	Suites []string
	// Rows[metric][suite][pctIdx]; percentiles are 50 and 90.
	Rows  map[string][][2]float64
	Order []string
}

// Table9 computes the cross-benchmark comparison.
func Table9(env *Env) (*Table9Result, error) {
	suites := map[string][]workload.Query{
		"TPC-DS": workload.TPCDSQueries(),
		"TPC-H":  workload.TPCHQueries(),
		"Other":  workload.OtherQueries(),
	}
	order := []string{"Total/First pass time", "# of passes", "# Aggregation Ops.", "# Joins",
		"depth of operators", "size of QCS + QVS", "size of QCS"}
	names := []string{"TPC-DS", "TPC-H", "Other"}
	res := &Table9Result{Suites: names, Rows: map[string][][2]float64{}, Order: order}
	for _, metric := range order {
		res.Rows[metric] = make([][2]float64, len(names))
	}
	for si, name := range names {
		tab, err := characteristics(env, suites[name])
		if err != nil {
			return nil, err
		}
		pick := func(metric string) [2]float64 {
			vals := tab.Rows[metric]
			// characteristics percentiles: 10,25,50,75,90,95 → indexes 2, 4.
			return [2]float64{vals[2], vals[4]}
		}
		for _, metric := range order {
			res.Rows[metric][si] = pick(metric)
		}
	}
	return res, nil
}

// Render prints the table.
func (r *Table9Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 9: query attributes from different workloads (50th | 90th percentile)\n")
	fmt.Fprintf(&b, "%-24s", "Metric")
	for _, s := range r.Suites {
		fmt.Fprintf(&b, "%16s", s)
	}
	b.WriteByte('\n')
	for _, metric := range r.Order {
		fmt.Fprintf(&b, "%-24s", metric)
		for si := range r.Suites {
			v := r.Rows[metric][si]
			fmt.Fprintf(&b, "%8.1f|%7.1f", v[0], v[1])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
