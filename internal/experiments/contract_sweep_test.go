package experiments

// Contract-satisfaction sweep: over many sampler seeds, queries carrying
// an ERROR WITHIN ... CONFIDENCE 95% contract must realize a relative
// error against the reference evaluator's exact answer that stays within
// the stated bound in at least 90% of observations — the contract is a
// 95% guarantee, and 90% leaves the same estimated-variance slack as the
// CI95 coverage sweep. Three workload shapes stress different parts of
// the contract path: a uniform value column (faithful prediction, low
// rung), a heavy-spike column (high cv², high rung), and an FK join
// (sampler pushed below the join). A second test asserts the learned
// correction loop pays off: warm history must reduce the mean escalation
// count versus cold history on the same workload.

import (
	"math"
	"testing"

	"quickr"
	"quickr/internal/refimpl"
	"quickr/internal/table"
)

// contractFloor is the acceptance bar for the realized-error sweep.
const contractFloor = 0.90

// newSpikeEngine builds an engine over sk(g, v): v carries a
// deterministic heavy spike (20 on every 61st row, 1 otherwise), giving
// SUM(v) a squared coefficient of variation around 3.4 and SUM(v*v)
// around 45 — the latter far above the optimizer's cv²=1 fallback for
// computed aggregate arguments.
func newSpikeEngine(tb testing.TB, n, groups int) *quickr.Engine {
	tb.Helper()
	eng := quickr.New()
	if err := eng.CreateTable("sk", []quickr.Column{
		{Name: "g", Type: quickr.Int},
		{Name: "v", Type: quickr.Float},
	}, 4); err != nil {
		tb.Fatal(err)
	}
	rows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		v := 1.0
		if i%61 == 0 {
			v = 20.0
		}
		rows = append(rows, []any{i % groups, v})
	}
	if err := eng.Insert("sk", rows); err != nil {
		tb.Fatal(err)
	}
	return eng
}

// newUniformEngine builds an engine over u(g, v) with v pseudo-uniform
// in [50, 151) from a fixed multiplicative hash (no math/rand: the data
// must be identical on every run).
func newUniformEngine(tb testing.TB, n, groups int) *quickr.Engine {
	tb.Helper()
	eng := quickr.New()
	if err := eng.CreateTable("u", []quickr.Column{
		{Name: "g", Type: quickr.Int},
		{Name: "v", Type: quickr.Float},
	}, 4); err != nil {
		tb.Fatal(err)
	}
	rows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		h := (uint64(i) * 2654435761) % 1009
		rows = append(rows, []any{i % groups, 50 + float64(h)/10})
	}
	if err := eng.Insert("u", rows); err != nil {
		tb.Fatal(err)
	}
	return eng
}

// contractTruth computes the reference evaluator's exact answer for the
// contract-free form of the query, keyed like the engine's estimates.
func contractTruth(t *testing.T, eng *quickr.Engine, bareSQL string, keyCols int) map[string][]float64 {
	t.Helper()
	plan, err := eng.BoundPlan(bareSQL)
	if err != nil {
		t.Fatalf("bind %q: %v", bareSQL, err)
	}
	refRows, err := refimpl.Run(eng.Catalog(), plan)
	if err != nil {
		t.Fatalf("refimpl %q: %v", bareSQL, err)
	}
	truth := map[string][]float64{}
	for _, r := range refRows {
		anyRow := make([]any, len(r))
		for i, v := range r {
			switch v.Kind() {
			case table.KindNull:
				anyRow[i] = nil
			case table.KindInt:
				anyRow[i] = v.Int()
			case table.KindFloat:
				anyRow[i] = v.Float()
			case table.KindString:
				anyRow[i] = v.Str()
			case table.KindBool:
				anyRow[i] = v.Bool()
			}
		}
		vals := make([]float64, 0, len(anyRow)-keyCols)
		for _, v := range anyRow[keyCols:] {
			f, isNum := toFloat(v)
			if !isNum {
				f = math.NaN()
			}
			vals = append(vals, f)
		}
		truth[keyString(anyRow[:keyCols], keyCols)] = vals
	}
	return truth
}

// contractSweepCase is one workload in the satisfaction sweep.
type contractSweepCase struct {
	name    string
	eng     *quickr.Engine
	sql     string // contract-bearing query
	bareSQL string // same query without the contract clause
	keyCols int
	target  float64 // the contract's relative-error bound
}

// sweepContractCase runs the contract query over every sweep seed and
// checks realized error against ground truth.
func sweepContractCase(t *testing.T, c contractSweepCase) {
	t.Helper()
	truth := contractTruth(t, c.eng, c.bareSQL, c.keyCols)
	if len(truth) == 0 {
		t.Fatal("no ground-truth groups")
	}
	var within, trials, sampledRuns, escalations int
	for seed := uint64(1); seed <= sweepSeeds; seed++ {
		c.eng.SetSeed(seed)
		res, err := c.eng.ExecApprox(c.sql)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ci := res.Contract
		if ci == nil {
			t.Fatalf("seed %d: contract query returned no ContractInfo", seed)
		}
		if !ci.Satisfied {
			t.Fatalf("seed %d: engine reported contract unsatisfied: %+v", seed, ci)
		}
		escalations += ci.Escalations
		if res.Sampled {
			sampledRuns++
		}
		for _, g := range res.Estimates {
			if g.SampleRows < minSupport {
				continue
			}
			tg, ok := truth[keyString(g.Key, c.keyCols)]
			if !ok {
				continue // group-miss coverage is the seed sweep's job
			}
			for i, tv := range tg {
				if i >= len(g.Values) || math.IsNaN(tv) || tv == 0 {
					continue
				}
				est, isNum := toFloat(g.Values[i])
				if !isNum {
					continue
				}
				trials++
				if math.Abs(est-tv) <= c.target*math.Abs(tv) {
					within++
				}
			}
		}
	}
	c.eng.SetSeed(0)
	if trials == 0 {
		t.Fatal("no contract observations (all groups below support?)")
	}
	// The sweep must actually exercise sampling: a workload where every
	// seed degrades to the exact plan asserts nothing about contracts.
	if sampledRuns < sweepSeeds/2 {
		t.Fatalf("only %d/%d runs sampled; workload does not exercise the contract path", sampledRuns, sweepSeeds)
	}
	frac := float64(within) / float64(trials)
	t.Logf("%s: realized error within %.0f%% bound in %.3f of %d observations (%d/%d sampled runs, %d escalations)",
		c.name, 100*c.target, frac, trials, sampledRuns, sweepSeeds, escalations)
	if frac < contractFloor {
		t.Errorf("contract held in %.1f%% of %d observations, want >= %.0f%%",
			100*frac, trials, 100*contractFloor)
	}
}

// TestContractSweepSatisfaction is the statistical acceptance gate for
// error contracts, run nightly alongside the CI95 seed sweep.
func TestContractSweepSatisfaction(t *testing.T) {
	if testing.Short() {
		t.Skip("contract sweep runs nightly; skipped in -short")
	}
	uniform := contractSweepCase{
		name:    "uniform",
		eng:     newUniformEngine(t, 40000, 8),
		sql:     "SELECT g, SUM(v), COUNT(*) FROM u GROUP BY g ERROR WITHIN 10% CONFIDENCE 95%",
		bareSQL: "SELECT g, SUM(v), COUNT(*) FROM u GROUP BY g",
		keyCols: 1,
		target:  0.10,
	}
	skewed := contractSweepCase{
		name:    "skewed",
		eng:     newSpikeEngine(t, 40000, 8),
		sql:     "SELECT g, SUM(v) FROM sk GROUP BY g ERROR WITHIN 15% CONFIDENCE 95%",
		bareSQL: "SELECT g, SUM(v) FROM sk GROUP BY g",
		keyCols: 1,
		target:  0.15,
	}
	join := contractSweepCase{
		name: "fk-join",
		eng:  NewTPCDSEnv(1).Eng,
		sql: "SELECT d_year, SUM(ss_sales_price) FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk " +
			"GROUP BY d_year ERROR WITHIN 10% CONFIDENCE 95%",
		bareSQL: "SELECT d_year, SUM(ss_sales_price) FROM store_sales JOIN date_dim ON ss_sold_date_sk = d_date_sk " +
			"GROUP BY d_year",
		keyCols: 1,
		target:  0.10,
	}
	for _, c := range []contractSweepCase{uniform, skewed, join} {
		c := c
		t.Run(c.name, func(t *testing.T) { sweepContractCase(t, c) })
	}
}

// TestContractSweepWarmHistory asserts the learned correction loop pays
// off: on a workload whose cold cv² fallback badly under-predicts
// (SUM(v*v) over the spike column), warm history must reduce the mean
// escalation count versus cold history on the same seeds — the
// corrected model either starts at a rung that holds or goes straight
// to the exact plan instead of climbing the ladder every time.
func TestContractSweepWarmHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("contract sweep runs nightly; skipped in -short")
	}
	const (
		warmSeeds = 40
		query     = "SELECT g, SUM(v * v) FROM sk GROUP BY g ERROR WITHIN 6% CONFIDENCE 95%"
	)
	eng := newSpikeEngine(t, 40000, 8)

	var coldEsc int
	for seed := uint64(1); seed <= warmSeeds; seed++ {
		eng.ResetHistory() // every seed starts from cold estimates
		eng.SetSeed(seed)
		res, err := eng.ExecApprox(query)
		if err != nil {
			t.Fatalf("cold seed %d: %v", seed, err)
		}
		if res.Contract == nil || !res.Contract.Satisfied {
			t.Fatalf("cold seed %d: %+v", seed, res.Contract)
		}
		coldEsc += res.Contract.Escalations
	}

	// Warm: prime once, then keep the history across seeds.
	eng.ResetHistory()
	eng.SetSeed(9999)
	if _, err := eng.ExecApprox(query); err != nil {
		t.Fatalf("prime: %v", err)
	}
	var warmEsc, historyHits int
	for seed := uint64(1); seed <= warmSeeds; seed++ {
		eng.SetSeed(seed)
		res, err := eng.ExecApprox(query)
		if err != nil {
			t.Fatalf("warm seed %d: %v", seed, err)
		}
		if res.Contract == nil || !res.Contract.Satisfied {
			t.Fatalf("warm seed %d: %+v", seed, res.Contract)
		}
		warmEsc += res.Contract.Escalations
		if res.Contract.HistoryHit {
			historyHits++
		}
	}
	eng.SetSeed(0)

	coldMean := float64(coldEsc) / warmSeeds
	warmMean := float64(warmEsc) / warmSeeds
	t.Logf("mean escalations: cold %.2f, warm %.2f (%d/%d warm runs used history)",
		coldMean, warmMean, historyHits, warmSeeds)
	if coldEsc == 0 {
		t.Fatal("cold runs never escalated; the workload does not exercise the correction loop")
	}
	if historyHits != warmSeeds {
		t.Fatalf("only %d/%d warm runs hit the history store", historyHits, warmSeeds)
	}
	if warmMean >= coldMean {
		t.Errorf("warm history did not reduce mean escalations: cold %.2f, warm %.2f", coldMean, warmMean)
	}
}
