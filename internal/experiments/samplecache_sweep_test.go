package experiments

// Warm-vs-cold statistical sweep for hot-sample reuse: over the same
// 200 sampler seeds the base seed sweep uses, every query runs twice —
// a cold execution that populates the sample cache, then a warm replay
// served from it. The warm replay must be bit-identical to the cold run
// (same result hash, hence the same estimates, CI95 bars and missed
// groups), and the coverage statistics accumulated from the warm runs
// must clear the same ≥90% floor as the lazy path. A cache that changed
// weights, dropped rows or served stale samples would surface here as a
// hash mismatch or coverage collapse.

import (
	"testing"

	"quickr/internal/metrics"
)

func TestSeedSweepCoverageCached(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep runs nightly; skipped in -short")
	}
	env := NewTPCDSEnv(0.05)
	queries := pickSweepQueries(t, env, 5)
	env.Eng.SetSampleCache(DashboardCacheBudget)
	defer env.Eng.SetSampleCache(0)

	hits0 := metrics.SampleCacheHits.Load()
	for _, sq := range queries {
		sq := sq
		t.Run(sq.q.ID, func(t *testing.T) {
			var cold, warm sweepStats
			for seed := uint64(1); seed <= sweepSeeds; seed++ {
				env.Eng.SetSeed(seed) // bumps the epoch: every seed starts cold
				coldRes, err := env.Eng.ExecApprox(sq.q.SQL)
				if err != nil {
					t.Fatalf("seed %d cold: %v", seed, err)
				}
				warmRes, err := env.Eng.ExecApprox(sq.q.SQL)
				if err != nil {
					t.Fatalf("seed %d warm: %v", seed, err)
				}
				if ch, wh := resultHash(coldRes), resultHash(warmRes); ch != wh {
					t.Fatalf("seed %d: warm replay hash %s differs from cold %s", seed, wh[:12], ch[:12])
				}
				observeSweepRun(&cold, sq, coldRes)
				observeSweepRun(&warm, sq, warmRes)
			}
			if cold != warm {
				t.Errorf("warm sweep statistics diverge from cold: %+v vs %+v", warm, cold)
			}
			checkSweepStats(t, sq, warm)
		})
	}
	// Not every swept plan is cacheable (a sampler above a join is not),
	// but across five queries × 200 seeds the cache must have served
	// replays — otherwise this sweep never exercised the warm path.
	if metrics.SampleCacheHits.Load() == hits0 {
		t.Error("no sample-cache hits across the cached sweep; the warm path was never exercised")
	}
	env.Eng.SetSeed(0)
}
