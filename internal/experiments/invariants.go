package experiments

import (
	"fmt"
	"math"

	"quickr"
)

// RateCheck is the verdict of one sampler pass-rate invariant: the
// observed pass fraction of a sampler operator compared against its
// configured probability p.
type RateCheck struct {
	// Op identifies the checked operator (the plan node's Describe text).
	Op string
	// Type is the sampler type (UNIFORM, DISTINCT, UNIVERSE).
	Type string
	// P is the configured pass probability.
	P float64
	// Seen and Passed are the measured counts.
	Seen, Passed int64
	// Rate is Passed/Seen.
	Rate float64
	// Tolerance is the band the rate was held to (interpretation depends
	// on the sampler type; see CheckSamplerRates).
	Tolerance float64
	// OK reports whether the invariant held.
	OK bool
	// Note explains a failure or a skipped check.
	Note string
}

func (c RateCheck) String() string {
	status := "ok"
	if !c.OK {
		status = "FAIL"
	}
	return fmt.Sprintf("%s %s p=%.4g rate=%.4g (%d/%d) ±%.4g: %s %s",
		c.Type, c.Op, c.P, c.Rate, c.Passed, c.Seen, c.Tolerance, status, c.Note)
}

// CheckSamplerRates validates every sampler in an executed plan against
// its configured probability, using the per-operator execution counters:
//
//   - UNIFORM passes rows by independent coin flips, so the observed rate
//     must sit within a few binomial standard deviations of p (widened to
//     an absolute floor for small inputs).
//   - DISTINCT guarantees δ rows per stratum on top of the coin flips, so
//     its rate is lower-bounded by (slightly under) p but may legitimately
//     reach 1.0 on small or high-cardinality inputs.
//   - UNIVERSE picks a p-fraction of the value subspace, not of the rows;
//     with skewed keys the row rate can differ from p substantially, so it
//     is only sanity-checked within a loose multiplicative band, and only
//     when enough rows were seen.
//
// Samplers that saw no rows are reported as OK with a note.
func CheckSamplerRates(res *quickr.Result) []RateCheck {
	if res == nil || res.Stats == nil {
		return nil
	}
	var out []RateCheck
	for _, op := range res.Stats.Ops() {
		if op.SamplerType == "" || op.SamplerType == "PASSTHROUGH" {
			continue
		}
		tot := op.Total()
		c := RateCheck{
			Op:     op.Detail,
			Type:   op.SamplerType,
			P:      op.SamplerP,
			Seen:   tot.SamplerSeen,
			Passed: tot.SamplerPassed,
			OK:     true,
		}
		if c.Seen == 0 {
			c.Note = "no rows seen; skipped"
			out = append(out, c)
			continue
		}
		c.Rate = float64(c.Passed) / float64(c.Seen)
		switch c.Type {
		case "UNIFORM":
			// 5σ binomial band with a 2% absolute floor.
			sd := math.Sqrt(c.P * (1 - c.P) / float64(c.Seen))
			c.Tolerance = math.Max(0.02, 5*sd)
			if math.Abs(c.Rate-c.P) > c.Tolerance {
				c.OK = false
				c.Note = "rate outside binomial band"
			}
		case "DISTINCT":
			// Rate may exceed p (per-stratum guarantees add rows) but a
			// rate materially below p means rows were dropped wrongly.
			c.Tolerance = math.Max(0.02, 5*math.Sqrt(c.P*(1-c.P)/float64(c.Seen)))
			if c.Rate < c.P-c.Tolerance {
				c.OK = false
				c.Note = "rate below configured p"
			}
		case "UNIVERSE":
			// Advisory only: needs volume, and even then key skew makes
			// the row rate a loose proxy for the subspace fraction.
			if c.Seen < 5000 {
				c.Note = "too few rows for a universe rate check; skipped"
				break
			}
			c.Tolerance = 10 * c.P
			if c.Rate > 10*c.P || (c.P > 0 && c.Rate < c.P/10) {
				c.OK = false
				c.Note = "rate implausibly far from subspace fraction"
			}
		default:
			c.Note = "unknown sampler type; skipped"
		}
		out = append(out, c)
	}
	return out
}

// RateFailures filters checks down to the failed ones.
func RateFailures(checks []RateCheck) []RateCheck {
	var out []RateCheck
	for _, c := range checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}
