package experiments

import (
	"testing"

	"quickr/internal/workload"
)

// TestTPCDSSuiteRuns is the integration gate: every query in all three
// suites must parse, bind, optimize and execute under both the Baseline
// and the Quickr plan, with sane error metrics.
func TestTPCDSSuiteRuns(t *testing.T) {
	env := NewFullEnv(1)
	suites := [][]workload.Query{
		workload.TPCDSQueries(),
		workload.TPCHQueries(),
		workload.OtherQueries(),
	}
	sampled := 0
	total := 0
	for _, suite := range suites {
		for _, q := range suite {
			q := q
			t.Run(q.ID, func(t *testing.T) {
				total++
				out := RunQuery(env, q)
				if out.Err != nil {
					t.Fatalf("%s: %v\nSQL: %s", q.ID, out.Err, q.SQL)
				}
				if len(out.Exact.Rows) == 0 {
					t.Fatalf("%s: exact answer empty", q.ID)
				}
				if out.Sampled {
					sampled++
					if out.MissedGroupsFull > 0.2 {
						t.Errorf("%s: missed %.0f%% of full groups", q.ID, 100*out.MissedGroupsFull)
					}
					if out.AggErrorFull > 0.6 {
						t.Errorf("%s: full agg error %.2f too high", q.ID, out.AggErrorFull)
					}
					if len(out.RateChecks) == 0 {
						t.Errorf("%s: sampled plan reported no sampler rate checks", q.ID)
					}
					for _, c := range RateFailures(out.RateChecks) {
						t.Errorf("%s: sampler rate invariant failed: %s", q.ID, c)
					}
				}
			})
		}
	}
	if total >= 60 && sampled < total/3 {
		t.Errorf("only %d of %d queries sampled; expected more approximable queries", sampled, total)
	}
	t.Logf("sampled %d of %d queries", sampled, total)
}
