package experiments

import (
	"fmt"
	"sort"
	"strings"

	"quickr/internal/workload"
)

// Fig8Result bundles the paper's headline evaluation: performance gains
// (Fig. 8a), error metrics (Fig. 8b), and the correlation of gains with
// query aspects (Fig. 8c), all over the TPC-DS-like suite.
type Fig8Result struct {
	Outcomes []Outcome

	// Fig. 8a CDF inputs (Baseline/Quickr ratios, one per query).
	GainMachineHours []float64
	GainRuntime      []float64
	GainIntermediate []float64
	GainShuffled     []float64

	// Fig. 8b CDF inputs.
	AggError         []float64
	MissedGroups     []float64
	AggErrorFull     []float64
	MissedGroupsFull []float64

	Unapproximable int
}

// Fig8 runs the suite and collects the Fig. 8 series.
func Fig8(env *Env) (*Fig8Result, error) {
	res := &Fig8Result{}
	for _, q := range workload.TPCDSQueries() {
		out := RunQuery(env, q)
		if out.Err != nil {
			return nil, out.Err
		}
		res.Outcomes = append(res.Outcomes, out)
		res.GainMachineHours = append(res.GainMachineHours, out.GainMachineHours)
		res.GainRuntime = append(res.GainRuntime, out.GainRuntime)
		res.GainIntermediate = append(res.GainIntermediate, out.GainIntermediate)
		res.GainShuffled = append(res.GainShuffled, out.GainShuffled)
		res.AggError = append(res.AggError, out.AggError)
		res.MissedGroups = append(res.MissedGroups, out.MissedGroups)
		res.AggErrorFull = append(res.AggErrorFull, out.AggErrorFull)
		res.MissedGroupsFull = append(res.MissedGroupsFull, out.MissedGroupsFull)
		if out.Unapproximable {
			res.Unapproximable++
		}
	}
	return res, nil
}

// RenderA prints the Fig. 8a CDFs plus headline medians.
func (r *Fig8Result) RenderA() string {
	var b strings.Builder
	b.WriteString("Figure 8a: CDF of Baseline/Quickr performance ratios (x>1 means Quickr wins)\n")
	b.WriteString(renderCDF(map[string][]float64{
		"Machine-hours": r.GainMachineHours,
		"Runtime":       r.GainRuntime,
		"Interm. Data":  r.GainIntermediate,
		"Shuffled Data": r.GainShuffled,
	}, []string{"Machine-hours", "Runtime", "Interm. Data", "Shuffled Data"}))
	fmt.Fprintf(&b, "median machine-hours gain: %.2fx; median runtime gain: %.2fx\n",
		Median(r.GainMachineHours), Median(r.GainRuntime))
	fmt.Fprintf(&b, "queries gaining >1.5x machine-hours: %.0f%%; unapproximable: %.0f%%\n",
		100*fracAbove(r.GainMachineHours, 1.5),
		100*float64(r.Unapproximable)/float64(len(r.Outcomes)))
	return b.String()
}

// RenderB prints the Fig. 8b error CDFs.
func (r *Fig8Result) RenderB() string {
	var b strings.Builder
	b.WriteString("Figure 8b: CDF of Quickr error metrics (%)\n")
	scale := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = 100 * x
		}
		return out
	}
	b.WriteString(renderCDF(map[string][]float64{
		"Agg. Error":          scale(r.AggError),
		"Missed Groups":       scale(r.MissedGroups),
		"Agg. Error: Full":    scale(r.AggErrorFull),
		"Missed Groups: Full": scale(r.MissedGroupsFull),
	}, []string{"Agg. Error", "Missed Groups", "Agg. Error: Full", "Missed Groups: Full"}))
	fmt.Fprintf(&b, "queries with agg error <=10%%: %.0f%%; <=20%%: %.0f%% (full answers)\n",
		100*fracBelow(r.AggErrorFull, 0.10+1e-12), 100*fracBelow(r.AggErrorFull, 0.20+1e-12))
	fmt.Fprintf(&b, "queries missing no groups in full answers: %.0f%%\n",
		100*fracBelow(r.MissedGroupsFull, 1e-12))
	return b.String()
}

// Fig8cBucket is one x-axis bucket of the gains correlation figure.
type Fig8cBucket struct {
	GainLo, GainHi  float64
	N               int
	SamplerSrcDist  float64
	TotalFirstRatio float64
	IntermRatio     float64
	PassesRatio     float64
}

// Fig8c correlates machine-hour gains with query aspects, averaging
// each metric within gain buckets as the paper does.
func (r *Fig8Result) Fig8c(env *Env) []Fig8cBucket {
	type rec struct {
		gain, dist, tf, interm, passes float64
	}
	var recs []rec
	for _, out := range r.Outcomes {
		if out.Exact == nil || out.Approx == nil {
			continue
		}
		dists := samplerDistances(out.Approx.PlanText)
		avgDist := 0.0
		for _, d := range dists {
			avgDist += float64(d)
		}
		if len(dists) > 0 {
			avgDist /= float64(len(dists))
		}
		tfB := ratio(out.Exact.Metrics.Runtime, out.Exact.Metrics.FirstPassTime)
		tfQ := ratio(out.Approx.Metrics.Runtime, out.Approx.Metrics.FirstPassTime)
		passes := ratio(out.Exact.Metrics.Passes, out.Approx.Metrics.Passes)
		recs = append(recs, rec{
			gain:   out.GainMachineHours,
			dist:   avgDist,
			tf:     ratio(tfB, tfQ),
			interm: out.GainIntermediate,
			passes: passes,
		})
	}
	bounds := []float64{0, 1.05, 1.5, 2, 3, 1e9}
	var out []Fig8cBucket
	for i := 0; i+1 < len(bounds); i++ {
		b := Fig8cBucket{GainLo: bounds[i], GainHi: bounds[i+1]}
		for _, r := range recs {
			if r.gain >= b.GainLo && r.gain < b.GainHi {
				b.N++
				b.SamplerSrcDist += r.dist
				b.TotalFirstRatio += r.tf
				b.IntermRatio += r.interm
				b.PassesRatio += r.passes
			}
		}
		if b.N > 0 {
			b.SamplerSrcDist /= float64(b.N)
			b.TotalFirstRatio /= float64(b.N)
			b.IntermRatio /= float64(b.N)
			b.PassesRatio /= float64(b.N)
		}
		out = append(out, b)
	}
	return out
}

// RenderC prints the Fig. 8c buckets.
func RenderFig8c(buckets []Fig8cBucket) string {
	var b strings.Builder
	b.WriteString("Figure 8c: average query aspects per machine-hours-gain bucket\n")
	fmt.Fprintf(&b, "%-14s%4s%18s%22s%18s%18s\n",
		"gain bucket", "n", "sampler-src dist", "B/Q total/first-pass", "B/Q interm. data", "B/Q # passes")
	for _, bk := range buckets {
		hi := fmt.Sprintf("%.2f", bk.GainHi)
		if bk.GainHi > 1e8 {
			hi = "inf"
		}
		fmt.Fprintf(&b, "[%.2f,%s) %5d%18.2f%22.2f%18.2f%18.2f\n",
			bk.GainLo, hi, bk.N, bk.SamplerSrcDist, bk.TotalFirstRatio, bk.IntermRatio, bk.PassesRatio)
	}
	return b.String()
}

// renderCDF prints aligned CDF milestones for multiple series.
func renderCDF(series map[string][]float64, order []string) string {
	var b strings.Builder
	fracs := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	fmt.Fprintf(&b, "%-22s", "series \\ CDF fraction")
	for _, f := range fracs {
		fmt.Fprintf(&b, "%9.0f%%", 100*f)
	}
	b.WriteByte('\n')
	for _, name := range order {
		xs := append([]float64{}, series[name]...)
		sort.Float64s(xs)
		fmt.Fprintf(&b, "%-22s", name)
		for _, f := range fracs {
			idx := int(f*float64(len(xs))) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(xs) {
				idx = len(xs) - 1
			}
			fmt.Fprintf(&b, "%10.2f", xs[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func fracAbove(xs []float64, t float64) float64 {
	n := 0
	for _, x := range xs {
		if x > t {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

func fracBelow(xs []float64, t float64) float64 {
	n := 0
	for _, x := range xs {
		if x <= t {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
