package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"quickr"
)

// Contract bench: a small deterministic suite of contract-bearing
// queries run twice — cold (empty history) and warm (history retained
// from the cold pass) — so CI can gate the whole contract path: rung
// selection, escalation, exact fallback, plan-cache reuse on retries,
// and the learned correction loop. The suite runs over its own spike
// table (registered into the bench engine) so outcomes do not depend on
// the scale factor of the surrounding benchmark datasets.

// ContractRun is one pass of one contract query in the report.
type ContractRun struct {
	ID       string                 `json:"id"`
	SQL      string                 `json:"sql"`
	Pass     string                 `json:"pass"` // "cold" | "warm"
	Contract *quickr.ContractReport `json:"contract"`
}

// ContractBenchReport is the CONTRACT_<experiment>.json payload,
// validated by `benchcheck -contract`.
type ContractBenchReport struct {
	Experiment  string        `json:"experiment"`
	ScaleFactor float64       `json:"scale_factor"`
	Runs        []ContractRun `json:"runs"`
	// Violations counts runs whose contract went unsatisfied; the
	// escalation fallback to the exact plan makes the invariant zero.
	Violations int `json:"violations"`
}

// contractBenchQueries is the fixed suite: a cold-under-predicted
// escalator (computed aggregate argument, cv² fallback), two directly
// satisfiable error contracts, and a deadline contract.
var contractBenchQueries = []struct{ id, sql string }{
	{"ladder-sum-sq", "SELECT g, SUM(v * v) FROM contract_spike GROUP BY g ERROR WITHIN 6% CONFIDENCE 95%"},
	{"direct-sum", "SELECT g, SUM(v) FROM contract_spike GROUP BY g ERROR WITHIN 15% CONFIDENCE 95%"},
	{"direct-count", "SELECT g, COUNT(*) FROM contract_spike GROUP BY g ERROR WITHIN 5% CONFIDENCE 95%"},
	{"deadline", "SELECT g, SUM(v) FROM contract_spike GROUP BY g WITHIN 10s"},
}

// registerContractSpike adds the suite's table: v spikes to 20 on every
// 61st row (else 1), giving SUM(v*v) a true cv² around 45 versus the
// optimizer's cv²=1 fallback — the cold pass must escalate.
func registerContractSpike(eng *quickr.Engine) error {
	err := eng.CreateTable("contract_spike", []quickr.Column{
		{Name: "g", Type: quickr.Int},
		{Name: "v", Type: quickr.Float},
	}, 4)
	if err != nil {
		return err
	}
	const n = 40000
	rows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		v := 1.0
		if i%61 == 0 {
			v = 20.0
		}
		rows = append(rows, []any{i % 8, v})
	}
	return eng.Insert("contract_spike", rows)
}

// BuildContractReport runs the contract suite cold then warm on the
// environment's engine and collects the per-run contract outcomes.
func BuildContractReport(env *Env, id string, sf float64) (*ContractBenchReport, error) {
	eng := env.Eng
	if err := registerContractSpike(eng); err != nil {
		return nil, fmt.Errorf("contract suite table: %w", err)
	}
	rep := &ContractBenchReport{Experiment: id, ScaleFactor: sf}
	eng.ResetHistory()
	// No engine knob changes between the passes: the warm pass must
	// replay against the cold pass's cached plans.
	for _, pass := range []string{"cold", "warm"} {
		for _, q := range contractBenchQueries {
			res, err := eng.ExecApprox(q.sql)
			if err != nil {
				return nil, fmt.Errorf("%s (%s): %w", q.id, pass, err)
			}
			cr := res.ContractReport()
			if cr == nil {
				return nil, fmt.Errorf("%s (%s): no contract outcome on a contract query", q.id, pass)
			}
			if !cr.Satisfied {
				rep.Violations++
			}
			rep.Runs = append(rep.Runs, ContractRun{ID: q.id, SQL: q.sql, Pass: pass, Contract: cr})
		}
	}
	return rep, nil
}

// Write serializes the report as CONTRACT_<experiment>.json under dir
// and returns the path.
func (r *ContractBenchReport) Write(dir string) (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	path := filepath.Join(dir, fmt.Sprintf("CONTRACT_%s.json", r.Experiment))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
