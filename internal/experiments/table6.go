package experiments

import (
	"fmt"
	"strings"

	"quickr/internal/blinkdb"
	"quickr/internal/workload"
)

// Table6Row is one budget point of the BlinkDB sweep (paper Table 6).
type Table6Row struct {
	Budget float64
	// Covered counts queries for which some stored sample met the error
	// constraint (no missed groups, aggregates within ±10%) AND ran
	// cheaper than the exact plan.
	Covered int
	Total   int
	// CoveredFactFact / TotalFactFact restrict the same count to queries
	// joining two or more fact tables — the class the paper argues input
	// samples cannot serve (§3) and Quickr's universe sampler targets.
	CoveredFactFact int
	TotalFactFact   int
	// MedianGainAll is the median speedup over ALL store_sales queries
	// (uncovered queries contribute 0 — the paper reports a 0% median).
	MedianGainAll float64
	// MedianGainCovered is the median speedup among covered queries.
	MedianGainCovered float64
	// MedianError is the median aggregate error among covered queries.
	MedianError float64
	Samples     int
	StoredRows  int
}

// Table6Result is the full sweep at one parameter setting.
type Table6Result struct {
	K    int
	Rows []Table6Row
}

// Table6 evaluates the BlinkDB baseline: build stratified samples of
// store_sales under each budget, run every store_sales query on every
// sample (perfect matching, §5.5), and report coverage and gains.
func Table6(env *Env, k int, budgets []float64) (*Table6Result, error) {
	base, err := env.Eng.Catalog().Table("store_sales")
	if err != nil {
		return nil, err
	}
	queries := workload.TPCDSQueries()
	qcsByQuery := map[string][]string{}
	var ssQueries []workload.Query
	factTables := map[string]bool{
		"store_sales": true, "store_returns": true, "catalog_sales": true,
		"catalog_returns": true, "web_sales": true, "web_returns": true,
	}
	factFact := map[string]bool{}
	for _, q := range queries {
		qcs, err := env.Eng.QueryColumnSets(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		if cols, ok := qcs["store_sales"]; ok {
			qcsByQuery[q.ID] = cols
			ssQueries = append(ssQueries, q)
			facts := 0
			for t := range qcs {
				if factTables[t] {
					facts++
				}
			}
			factFact[q.ID] = facts >= 2
		}
	}

	res := &Table6Result{K: k}
	for _, budget := range budgets {
		store := blinkdb.Build(base, qcsByQuery, blinkdb.Config{K: k, BudgetFactor: budget, Seed: 42})
		row := Table6Row{Budget: budget, Total: len(ssQueries), Samples: len(store.Samples), StoredRows: store.UsedRows}
		for id, ff := range factFact {
			_ = id
			if ff {
				row.TotalFactFact++
			}
		}
		var gainsAll, gainsCovered, errsCovered []float64
		for _, q := range ssQueries {
			exact, err := env.Eng.Exec(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.ID, err)
			}
			bestGain := 0.0
			bestErr := 0.0
			for _, smp := range store.Samples {
				approx, err := env.Eng.ExecWithSample(q.SQL, "store_sales", smp.Table)
				if err != nil {
					continue
				}
				missed, aggErr := compareEstimates(exact, approx)
				if missed > 0 || aggErr > 0.10 {
					continue
				}
				gain := ratio(exact.Metrics.MachineHours, approx.Metrics.MachineHours)
				if gain > bestGain {
					bestGain = gain
					bestErr = aggErr
				}
			}
			// "Benefit" means a real speedup, not noise on a full-size
			// sample: require at least 10% fewer machine-hours.
			if bestGain >= 1.1 {
				row.Covered++
				if factFact[q.ID] {
					row.CoveredFactFact++
				}
				gainsAll = append(gainsAll, bestGain-1)
				gainsCovered = append(gainsCovered, bestGain-1)
				errsCovered = append(errsCovered, bestErr)
			} else {
				gainsAll = append(gainsAll, 0)
			}
		}
		row.MedianGainAll = Median(gainsAll)
		row.MedianGainCovered = Median(gainsCovered)
		row.MedianError = Median(errsCovered)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep.
func (r *Table6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: BlinkDB-style apriori sampling on TPC-DS (K=M=%d)\n", r.K)
	fmt.Fprintf(&b, "%-8s%12s%14s%16s%20s%14s%10s%12s\n",
		"Budget", "Coverage", "FactFactCov", "MedGain:All", "MedGain:Covered", "MedError", "Samples", "StoredRows")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%5.1fx  %6d/%-5d%7d/%-6d%15.0f%%%19.0f%%%13.0f%%%10d%12d\n",
			row.Budget, row.Covered, row.Total, row.CoveredFactFact, row.TotalFactFact,
			100*row.MedianGainAll, 100*row.MedianGainCovered, 100*row.MedianError,
			row.Samples, row.StoredRows)
	}
	return b.String()
}
