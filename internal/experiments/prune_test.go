package experiments

// Pruning-correctness battery: synthetic partition layouts with known
// ground truth, queried through the engine with the optimizer's
// partition-selection pass enabled. The pass scans a weighted subset of
// partitions (certainty stratum at weight 1, Horvitz–Thompson-inflated
// tail), so its estimates must stay unbiased and its widened CI95 bars
// (per-row sampling variance + partition-level cluster variance) must
// cover the truth at near-nominal rates across seeds — on uniform,
// value-skewed and partition-correlated (heavy-hitter) layouts alike.
//
// The battery also pins the off switch: with pruning disabled, results
// are bit-identical to an engine that never heard of the pass (the
// committed stats/analyze goldens pin the same property end-to-end).

import (
	"math"
	"math/rand"
	"testing"

	"quickr"
	"quickr/internal/table"
)

const (
	pruneParts   = 16
	pruneRowsPer = 400
	pruneKeys    = 4
	pruneSeeds   = 40
	// pruneCoverageFloor is looser than the nominal 95% (and the seed
	// sweep's 90%) because the battery's layouts are adversarial for
	// cluster sampling and the group count per run is small.
	pruneCoverageFloor = 0.85
)

type pruneTruth struct {
	sum   float64
	count float64
}

// buildPruneCase materializes one synthetic layout as a 16-partition
// fact table with explicit partition placement, returning per-group
// ground truth for SELECT g, SUM(v), COUNT(*) ... GROUP BY g.
func buildPruneCase(name string, gen func(r *rand.Rand, part, i int) (int64, float64)) (*table.Table, map[int64]*pruneTruth) {
	sc := table.NewSchema(
		table.Column{Name: "g", Kind: table.KindInt},
		table.Column{Name: "v", Kind: table.KindFloat},
	)
	tbl := table.New(name, sc, pruneParts)
	truth := map[int64]*pruneTruth{}
	r := rand.New(rand.NewSource(7))
	for p := 0; p < pruneParts; p++ {
		for i := 0; i < pruneRowsPer; i++ {
			g, v := gen(r, p, i)
			tbl.Append(p, table.Row{table.NewInt(g), table.NewFloat(v)})
			tr := truth[g]
			if tr == nil {
				tr = &pruneTruth{}
				truth[g] = tr
			}
			tr.sum += v
			tr.count++
		}
	}
	return tbl, truth
}

// pruneLayouts is the table driving the battery.
var pruneLayouts = []struct {
	name string
	gen  func(r *rand.Rand, part, i int) (int64, float64)
}{
	{
		// Every group spread evenly over every partition, unit-scale
		// values: the friendliest case for cluster sampling.
		name: "uniform",
		gen: func(r *rand.Rand, part, i int) (int64, float64) {
			return int64(i % pruneKeys), 1 + r.Float64()
		},
	},
	{
		// Heavy-tailed values (approximately Zipf via inverse-uniform):
		// per-partition totals vary, so the tail subsample must inflate
		// genuinely unequal cluster contributions.
		name: "skewed",
		gen: func(r *rand.Rand, part, i int) (int64, float64) {
			return int64(r.Intn(pruneKeys)), 1 / (0.05 + r.Float64())
		},
	},
	{
		// Partition-correlated: each group's "home" partition (part %
		// pruneKeys) holds a dominant share of its rows, exercising the
		// certainty stratum (home partitions must survive at weight 1).
		name: "heavy-hitter",
		gen: func(r *rand.Rand, part, i int) (int64, float64) {
			if i%2 == 0 {
				return int64(part % pruneKeys), 2 + r.Float64()
			}
			return int64(r.Intn(pruneKeys)), 1 + r.Float64()
		},
	},
}

func TestPruneCorrectnessBattery(t *testing.T) {
	for _, layout := range pruneLayouts {
		layout := layout
		t.Run(layout.name, func(t *testing.T) {
			tbl, truth := buildPruneCase("facts", layout.gen)
			eng := quickr.New()
			eng.RegisterStored(tbl)
			eng.SetPrune(true)
			sql := `SELECT g, SUM(v) AS total, COUNT(*) AS cnt FROM facts GROUP BY g`

			var pairs, covered, prunedRuns int
			var relErrSum float64
			for seed := uint64(1); seed <= pruneSeeds; seed++ {
				eng.SetSeed(seed)
				res, err := eng.ExecApprox(sql)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.Sampled || res.Unapproximable {
					t.Fatalf("seed %d: plan did not sample (the battery needs an approximate run)", seed)
				}
				if res.PartitionsPruned > 0 {
					prunedRuns++
				}
				for _, g := range res.Estimates {
					key, ok := g.Key[0].(int64)
					if !ok {
						t.Fatalf("seed %d: non-int group key %v", seed, g.Key[0])
					}
					tr := truth[key]
					if tr == nil {
						t.Fatalf("seed %d: estimate for unknown group %d", seed, key)
					}
					want := []float64{tr.sum, tr.count}
					for i, w := range want {
						est, isNum := toFloat(g.Values[i])
						if !isNum || i >= len(g.CI95) || g.CI95[i] <= 0 {
							continue
						}
						pairs++
						relErrSum += math.Abs(est-w) / w
						if math.Abs(est-w) <= g.CI95[i] {
							covered++
						}
					}
				}
			}
			if prunedRuns == 0 {
				t.Fatal("partition pruning never fired; the battery is not exercising the pass")
			}
			if pairs == 0 {
				t.Fatal("no coverage observations")
			}
			cov := float64(covered) / float64(pairs)
			t.Logf("%s: coverage %.3f over %d pairs, mean rel err %.3f, pruned in %d/%d runs",
				layout.name, cov, pairs, relErrSum/float64(pairs), prunedRuns, pruneSeeds)
			if cov < pruneCoverageFloor {
				t.Errorf("CI95 covered truth in %.1f%% of %d observations, want ≥ %.0f%%",
					100*cov, pairs, 100*pruneCoverageFloor)
			}
		})
	}
}

// TestPruneOffBitIdentity: an engine that enabled pruning and switched
// it back off must return results bit-identical (rows, estimates,
// standard errors, sample support) to an engine that never enabled it.
func TestPruneOffBitIdentity(t *testing.T) {
	for _, layout := range pruneLayouts {
		layout := layout
		t.Run(layout.name, func(t *testing.T) {
			tblA, _ := buildPruneCase("facts", layout.gen)
			tblB, _ := buildPruneCase("facts", layout.gen)
			toggled := quickr.New()
			toggled.RegisterStored(tblA)
			toggled.SetPrune(true)
			toggled.SetPrune(false)
			fresh := quickr.New()
			fresh.RegisterStored(tblB)
			sql := `SELECT g, SUM(v) AS total, COUNT(*) AS cnt FROM facts GROUP BY g`
			for seed := uint64(1); seed <= 5; seed++ {
				toggled.SetSeed(seed)
				fresh.SetSeed(seed)
				a, err := toggled.ExecApprox(sql)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				b, err := fresh.ExecApprox(sql)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if a.PartitionsPruned != 0 || b.PartitionsPruned != 0 {
					t.Fatalf("seed %d: pruning fired with the switch off", seed)
				}
				if ha, hb := resultHash(a), resultHash(b); ha != hb {
					t.Errorf("seed %d: toggled-off result hash %s != fresh engine %s", seed, ha[:12], hb[:12])
				}
			}
		})
	}
}
