package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"quickr/internal/metrics"
	"quickr/internal/workload"
)

// DashboardReport measures the serving shape the sample cache targets:
// N dashboard panels refreshed M times each by concurrent submitters
// sharing one engine. Three modes run over identical jobs — exact,
// cold-approximate (lazy sampling on every refresh), and
// cached-approximate (hot-sample reuse) — and every panel's result is
// fingerprinted in the cold and cached modes so CI can assert the warm
// path is bit-identical, not merely statistically close. Written as
// DASH_<experiment>.json and gated by `benchcheck -dashboard`.
type DashboardReport struct {
	Experiment  string  `json:"experiment"`
	ScaleFactor float64 `json:"scale_factor"`
	Panels      int     `json:"panels"`
	Refreshes   int     `json:"refreshes"`
	Workers     int     `json:"workers"`
	Cores       int     `json:"cores"`
	// Jobs is the per-mode job count (panels × refreshes).
	Jobs        int   `json:"jobs"`
	CacheBudget int64 `json:"cache_budget"`

	ExactQPS  float64 `json:"exact_qps"`
	ColdQPS   float64 `json:"cold_qps"`
	CachedQPS float64 `json:"cached_qps"`
	// CachedVsExact and CachedVsCold are the cached-mode speedups the
	// gate asserts exceed 1 on multicore machines.
	CachedVsExact float64 `json:"cached_vs_exact"`
	CachedVsCold  float64 `json:"cached_vs_cold"`

	// CacheHits/CacheMisses are the sample-cache counter deltas across
	// the cached pass; a warm hammer should be nearly all hits.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheBytes  int64 `json:"cache_bytes"`

	// HashMismatches counts panels whose cached-mode result hash differs
	// from the cold-mode hash; any nonzero value fails the gate.
	HashMismatches int               `json:"hash_mismatches"`
	PanelHashes    []PanelHashReport `json:"panel_hashes"`
}

// PanelHashReport fingerprints one panel's answer in both approximate
// modes.
type PanelHashReport struct {
	ID         string `json:"id"`
	Sampled    bool   `json:"sampled"`
	ResultRows int    `json:"result_rows"`
	ColdHash   string `json:"cold_hash"`
	CachedHash string `json:"cached_hash"`
	Match      bool   `json:"match"`
}

// DashboardCacheBudget is the sample-cache byte budget the dashboard
// benchmark enables for its cached pass.
const DashboardCacheBudget int64 = 64 << 20

// BuildDashboardReport runs the dashboard workload in the three modes.
// It flips the engine's sample-cache setting between passes (restoring
// the prior budget before returning), so call it with no other queries
// in flight — the same contract every engine settings change carries.
func BuildDashboardReport(env *Env, experiment string, sf float64, workers, refreshes int) (*DashboardReport, error) {
	queries := workload.DashboardQueries()
	rep := &DashboardReport{
		Experiment:  experiment,
		ScaleFactor: sf,
		Panels:      len(queries),
		Refreshes:   refreshes,
		Workers:     workers,
		Cores:       runtime.NumCPU(),
		Jobs:        len(queries) * refreshes,
		CacheBudget: DashboardCacheBudget,
	}
	var jobs []string
	for r := 0; r < refreshes; r++ {
		for _, q := range queries {
			jobs = append(jobs, q.SQL)
		}
	}
	// hammer measures QPS over the job list with the configured number
	// of concurrent submitters (the dashboard's refresh fan-out).
	hammer := func(run func(string) error) (float64, error) {
		start := time.Now()
		var firstErr error
		var mu sync.Mutex
		var wg sync.WaitGroup
		next := make(chan string)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sql := range next {
					if err := run(sql); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}
			}()
		}
		for _, sql := range jobs {
			next <- sql
		}
		close(next)
		wg.Wait()
		if firstErr != nil {
			return 0, firstErr
		}
		return float64(len(jobs)) / time.Since(start).Seconds(), nil
	}
	exact := func(sql string) error { _, err := env.Eng.Exec(sql); return err }
	approx := func(sql string) error { _, err := env.Eng.ExecApprox(sql); return err }
	warm := func(run func(string) error) error {
		for _, q := range queries {
			if err := run(q.SQL); err != nil {
				return fmt.Errorf("%s warmup: %w", q.ID, err)
			}
		}
		return nil
	}

	prevBudget := env.Eng.SampleCacheBudget()
	defer env.Eng.SetSampleCache(prevBudget)

	// Exact mode: the baseline every dashboard pays without Quickr.
	env.Eng.SetSampleCache(0)
	if err := warm(exact); err != nil {
		return nil, err
	}
	var err error
	if rep.ExactQPS, err = hammer(exact); err != nil {
		return nil, err
	}

	// Cold-approximate: lazy sampling re-scans the base table on every
	// refresh (plan cache warm, sample cache off).
	if err := warm(approx); err != nil {
		return nil, err
	}
	if rep.ColdQPS, err = hammer(approx); err != nil {
		return nil, err
	}
	coldHashes := make([]PanelHashReport, 0, len(queries))
	for _, q := range queries {
		res, err := env.Eng.ExecApprox(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("%s cold: %w", q.ID, err)
		}
		coldHashes = append(coldHashes, PanelHashReport{
			ID: q.ID, Sampled: res.Sampled,
			ResultRows: len(res.InternalRows),
			ColdHash:   resultHash(res),
		})
	}

	// Cached-approximate: the warmup populates the sample cache, then
	// the hammer replays materialized sampler output.
	env.Eng.SetSampleCache(DashboardCacheBudget)
	hits0, misses0 := metrics.SampleCacheHits.Load(), metrics.SampleCacheMisses.Load()
	if err := warm(approx); err != nil {
		return nil, err
	}
	if rep.CachedQPS, err = hammer(approx); err != nil {
		return nil, err
	}
	for i, q := range queries {
		res, err := env.Eng.ExecApprox(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("%s cached: %w", q.ID, err)
		}
		ph := coldHashes[i]
		ph.CachedHash = resultHash(res)
		ph.Match = ph.CachedHash == ph.ColdHash && len(res.InternalRows) == ph.ResultRows
		if !ph.Match {
			rep.HashMismatches++
		}
		rep.PanelHashes = append(rep.PanelHashes, ph)
	}
	rep.CacheHits = metrics.SampleCacheHits.Load() - hits0
	rep.CacheMisses = metrics.SampleCacheMisses.Load() - misses0
	rep.CacheBytes = metrics.SampleCacheBytes.Load()
	if rep.ExactQPS > 0 {
		rep.CachedVsExact = rep.CachedQPS / rep.ExactQPS
	}
	if rep.ColdQPS > 0 {
		rep.CachedVsCold = rep.CachedQPS / rep.ColdQPS
	}
	return rep, nil
}

// Write serializes the report as DASH_<experiment>.json under dir and
// returns the written path.
func (r *DashboardReport) Write(dir string) (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	path := filepath.Join(dir, fmt.Sprintf("DASH_%s.json", r.Experiment))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
