package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"quickr/internal/refimpl"
	"quickr/internal/table"
	"quickr/internal/workload"
)

// TestExecutorMatchesReferenceImplementation runs every workload query
// through both the optimized partitioned executor (exact plans) and the
// naive reference evaluator, and requires identical answers. This is
// the engine's end-to-end correctness oracle: the two implementations
// share no operator code (hash joins vs nested loops, compiled closures
// vs a tree walker, partitioned vs single-stream aggregation).
func TestExecutorMatchesReferenceImplementation(t *testing.T) {
	env := NewFullEnv(0.3)
	suites := [][]workload.Query{
		workload.TPCDSQueries(),
		workload.TPCHQueries(),
		workload.OtherQueries(),
	}
	for _, suite := range suites {
		for _, q := range suite {
			q := q
			t.Run(q.ID, func(t *testing.T) {
				got, err := env.Eng.Exec(q.SQL)
				if err != nil {
					t.Fatalf("exec: %v", err)
				}
				plan, err := env.Eng.BoundPlan(q.SQL)
				if err != nil {
					t.Fatalf("bind: %v", err)
				}
				want, err := refimpl.Run(env.Eng.Catalog(), plan)
				if err != nil {
					t.Fatalf("refimpl: %v", err)
				}
				compareAnswers(t, q, got.InternalRows, want)
			})
		}
	}
}

// compareAnswers compares row multisets (order-insensitively except
// that both sides must agree on cardinality), with float tolerance.
func compareAnswers(t *testing.T, q workload.Query, got, want []table.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows vs reference %d", q.ID, len(got), len(want))
	}
	// LIMIT answers: the kept set must match as a multiset; ordering
	// inside ties may differ, so compare canonicalized sets either way.
	g := canonical(got)
	w := canonical(want)
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d differs:\n  exec: %s\n  ref:  %s", q.ID, i, g[i], w[i])
		}
	}
}

// canonical renders rows with rounded floats and sorts them.
func canonical(rows []table.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var b strings.Builder
		for j, v := range r {
			if j > 0 {
				b.WriteByte('|')
			}
			switch v.Kind() {
			case table.KindFloat:
				f := v.Float()
				// Round to 6 significant-ish digits: the two sides sum
				// floats in different orders.
				fmt.Fprintf(&b, "%.6g", roundSig(f))
			default:
				b.WriteString(v.String())
			}
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

func roundSig(f float64) float64 {
	if f == 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return f
	}
	scale := math.Pow(10, 8-math.Ceil(math.Log10(math.Abs(f))))
	return math.Round(f*scale) / scale
}
