package experiments

import (
	"testing"

	"quickr/internal/workload"
)

// TestWorkloadPlansSatisfyInvariants runs every workload query through
// the optimizer with the plan-invariant verifier enabled, under both
// the Baseline plan (no samplers) and the Quickr plan (ASALQA): a
// violation of any sampler, universe-pairing, weight-propagation or
// exchange/breaker invariant fails the optimize step. This is the
// workload-wide gate behind internal/plancheck — every optimized
// logical plan and every compiled physical plan for the TPC-DS, TPC-H
// and Other suites must verify clean.
func TestWorkloadPlansSatisfyInvariants(t *testing.T) {
	env := NewFullEnv(0.2)
	env.Eng.SetPlanChecks(true)
	suites := map[string][]workload.Query{
		"tpcds": workload.TPCDSQueries(),
		"tpch":  workload.TPCHQueries(),
		"other": workload.OtherQueries(),
	}
	for name, suite := range suites {
		for _, q := range suite {
			q := q
			t.Run(name+"/"+q.ID, func(t *testing.T) {
				if _, err := env.Eng.Plan(q.SQL, false); err != nil {
					t.Errorf("baseline plan: %v", err)
				}
				if _, err := env.Eng.Plan(q.SQL, true); err != nil {
					t.Errorf("quickr plan: %v", err)
				}
			})
		}
	}
}
