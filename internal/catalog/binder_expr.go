package catalog

import (
	"fmt"
	"strings"

	"quickr/internal/lplan"
	"quickr/internal/sql"
	"quickr/internal/table"
)

// bindScalar binds a scalar (non-aggregate) expression against a scope.
func (b *Binder) bindScalar(e sql.Expr, sc *scope) (lplan.Expr, error) {
	switch x := e.(type) {
	case *sql.ColumnRef:
		ci, err := sc.resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return &lplan.ColRef{ID: ci.ID, Name: ci.Name, Kind: ci.Kind}, nil
	case *sql.Literal:
		return &lplan.Const{Val: x.Val}, nil
	case *sql.BinaryExpr:
		l, err := b.bindScalar(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := b.bindScalar(x.R, sc)
		if err != nil {
			return nil, err
		}
		return &lplan.Binary{Op: lplan.BinOp(x.Op), L: l, R: r}, nil
	case *sql.UnaryExpr:
		in, err := b.bindScalar(x.X, sc)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &lplan.Not{X: in}, nil
		}
		return &lplan.Neg{X: in}, nil
	case *sql.FuncCall:
		if sql.IsAggregateFunc(x.Name) {
			return nil, fmt.Errorf("bind: aggregate %s not allowed here", x.Name)
		}
		args := make([]lplan.Expr, len(x.Args))
		for i, a := range x.Args {
			bound, err := b.bindScalar(a, sc)
			if err != nil {
				return nil, err
			}
			args[i] = bound
		}
		return &lplan.Func{Name: strings.ToUpper(x.Name), Args: args}, nil
	case *sql.InExpr:
		in, err := b.bindScalar(x.X, sc)
		if err != nil {
			return nil, err
		}
		vals := make([]table.Value, len(x.List))
		for i, item := range x.List {
			lit, ok := item.(*sql.Literal)
			if !ok {
				return nil, fmt.Errorf("bind: IN list must contain literals")
			}
			vals[i] = lit.Val
		}
		return &lplan.In{X: in, Vals: vals, Inv: x.Not}, nil
	case *sql.BetweenExpr:
		in, err := b.bindScalar(x.X, sc)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindScalar(x.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindScalar(x.Hi, sc)
		if err != nil {
			return nil, err
		}
		rng := &lplan.Binary{
			Op: lplan.OpAnd,
			L:  &lplan.Binary{Op: lplan.OpGe, L: in, R: lo},
			R:  &lplan.Binary{Op: lplan.OpLe, L: in, R: hi},
		}
		if x.Not {
			return &lplan.Not{X: rng}, nil
		}
		return rng, nil
	case *sql.IsNullExpr:
		in, err := b.bindScalar(x.X, sc)
		if err != nil {
			return nil, err
		}
		return &lplan.IsNull{X: in, Inv: x.Not}, nil
	case *sql.LikeExpr:
		in, err := b.bindScalar(x.X, sc)
		if err != nil {
			return nil, err
		}
		return &lplan.Like{X: in, Pattern: x.Pattern, Inv: x.Not}, nil
	case *sql.CaseExpr:
		out := &lplan.Case{}
		for _, w := range x.Whens {
			c, err := b.bindScalar(w.Cond, sc)
			if err != nil {
				return nil, err
			}
			t, err := b.bindScalar(w.Then, sc)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, lplan.When{Cond: c, Then: t})
		}
		if x.Else != nil {
			e2, err := b.bindScalar(x.Else, sc)
			if err != nil {
				return nil, err
			}
			out.Else = e2
		}
		return out, nil
	}
	return nil, fmt.Errorf("bind: unsupported expression %T", e)
}

// inferKind types a bound expression.
func inferKind(e lplan.Expr) table.Kind {
	switch x := e.(type) {
	case *lplan.ColRef:
		return x.Kind
	case *lplan.Const:
		return x.Val.Kind()
	case *lplan.Binary:
		if x.Op.IsComparison() || x.Op == lplan.OpAnd || x.Op == lplan.OpOr {
			return table.KindBool
		}
		lk, rk := inferKind(x.L), inferKind(x.R)
		if x.Op == lplan.OpDiv {
			return table.KindFloat
		}
		if lk == table.KindInt && rk == table.KindInt {
			return table.KindInt
		}
		return table.KindFloat
	case *lplan.Not:
		return table.KindBool
	case *lplan.Neg:
		return inferKind(x.X)
	case *lplan.Func:
		kinds := make([]table.Kind, len(x.Args))
		for i, a := range x.Args {
			kinds[i] = inferKind(a)
		}
		return lplan.FuncReturnKind(x.Name, kinds)
	case *lplan.In, *lplan.IsNull, *lplan.Like:
		return table.KindBool
	case *lplan.Case:
		if len(x.Whens) > 0 {
			return inferKind(x.Whens[0].Then)
		}
	}
	return table.KindNull
}

// aggRef keys a seen aggregate by its canonical AST text.
type aggRef struct {
	spec lplan.AggSpec
	col  lplan.ColumnInfo
}

// bindAggregate builds Project(pre) -> Aggregate -> [Select having] ->
// Project(post) for an aggregated SELECT.
func (b *Binder) bindAggregate(sel *sql.SelectStmt, node lplan.Node, sc *scope) (lplan.Node, []lplan.ColumnInfo, error) {
	// 1. Collect group expressions and aggregate calls.
	type preCol struct {
		expr lplan.Expr
		ci   lplan.ColumnInfo
	}
	var pre []preCol
	preByText := map[string]int{}
	addPre := func(text string, expr lplan.Expr, name string) lplan.ColumnInfo {
		if i, ok := preByText[text]; ok {
			return pre[i].ci
		}
		ci := b.exprColumn(expr, name)
		// Ensure uniqueness: even pass-through ColRefs keep their ID —
		// duplicates collapse through preByText.
		b.recordLineage(ci)
		preByText[text] = len(pre)
		pre = append(pre, preCol{expr: expr, ci: ci})
		return ci
	}

	groupInfos := make([]lplan.ColumnInfo, 0, len(sel.GroupBy))
	groupByText := map[string]lplan.ColumnInfo{}
	for _, g := range sel.GroupBy {
		bound, err := b.bindScalar(g, sc)
		if err != nil {
			return nil, nil, err
		}
		ci := addPre(g.String(), bound, exprName(g))
		groupInfos = append(groupInfos, ci)
		groupByText[g.String()] = ci
		// Also allow referring to a grouped column by its select alias.
		for _, it := range sel.Items {
			if !it.Star && it.Alias != "" && it.Expr.String() == g.String() {
				groupByText[it.Alias] = ci
			}
		}
	}

	aggByText := map[string]aggRef{}
	var aggSpecs []lplan.AggSpec
	collectAggs := func(e sql.Expr) error {
		var cerr error
		sql.WalkExpr(e, func(x sql.Expr) {
			f, ok := x.(*sql.FuncCall)
			if !ok || !sql.IsAggregateFunc(f.Name) || cerr != nil {
				return
			}
			text := f.String()
			if _, seen := aggByText[text]; seen {
				return
			}
			spec, err := b.buildAggSpec(f, sc, addPre)
			if err != nil {
				cerr = err
				return
			}
			aggByText[text] = aggRef{spec: spec, col: spec.Out}
			aggSpecs = append(aggSpecs, spec)
		})
		return cerr
	}
	for _, it := range sel.Items {
		if it.Star {
			return nil, nil, fmt.Errorf("bind: SELECT * cannot be combined with aggregation")
		}
		if err := collectAggs(it.Expr); err != nil {
			return nil, nil, err
		}
	}
	if sel.Having != nil {
		if err := collectAggs(sel.Having); err != nil {
			return nil, nil, err
		}
	}

	// 2. Pre-aggregation projection (the paper's precursor, §4.2.2).
	exprs := make([]lplan.Expr, len(pre))
	cols := make([]lplan.ColumnInfo, len(pre))
	for i, pc := range pre {
		exprs[i] = pc.expr
		cols[i] = pc.ci
	}
	node = &lplan.Project{Input: node, Exprs: exprs, Cols: cols}

	// 3. Aggregate node (the successor performs these via HT estimators
	// when sampled).
	groupIDs := make([]lplan.ColumnID, len(groupInfos))
	for i, g := range groupInfos {
		groupIDs[i] = g.ID
	}
	agg := &lplan.Aggregate{Input: node, GroupCols: groupIDs, GroupInfo: groupInfos, Aggs: aggSpecs}
	var out lplan.Node = agg

	// 4. HAVING.
	if sel.Having != nil {
		pred, err := b.bindPostAgg(sel.Having, groupByText, aggByText)
		if err != nil {
			return nil, nil, err
		}
		out = &lplan.Select{Input: out, Pred: pred}
	}

	// 5. Final projection of the select items.
	var outExprs []lplan.Expr
	var outCols []lplan.ColumnInfo
	for _, it := range sel.Items {
		bound, err := b.bindPostAgg(it.Expr, groupByText, aggByText)
		if err != nil {
			return nil, nil, err
		}
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr)
		}
		ci := b.exprColumn(bound, name)
		b.recordLineage(ci)
		outExprs = append(outExprs, bound)
		outCols = append(outCols, ci)
	}
	return &lplan.Project{Input: out, Exprs: outExprs, Cols: outCols}, outCols, nil
}

// buildAggSpec converts one aggregate FuncCall to an AggSpec, projecting
// its argument and condition columns via addPre.
func (b *Binder) buildAggSpec(f *sql.FuncCall, sc *scope, addPre func(string, lplan.Expr, string) lplan.ColumnInfo) (lplan.AggSpec, error) {
	spec := lplan.AggSpec{Arg: lplan.NoColumn, Cond: lplan.NoColumn}
	outKind := table.KindFloat
	bindArg := func(e sql.Expr) (lplan.ColumnInfo, error) {
		bound, err := b.bindScalar(e, sc)
		if err != nil {
			return lplan.ColumnInfo{}, err
		}
		return addPre(e.String(), bound, exprName(e)), nil
	}
	switch f.Name {
	case "COUNT":
		outKind = table.KindInt
		switch {
		case f.Star:
			spec.Kind = lplan.AggCount
		case f.Distinct:
			if len(f.Args) != 1 {
				return spec, fmt.Errorf("bind: COUNT(DISTINCT) takes one argument")
			}
			spec.Kind = lplan.AggCountDistinct
			ci, err := bindArg(f.Args[0])
			if err != nil {
				return spec, err
			}
			spec.Arg = ci.ID
		default:
			if len(f.Args) != 1 {
				return spec, fmt.Errorf("bind: COUNT takes one argument")
			}
			spec.Kind = lplan.AggCount
			ci, err := bindArg(f.Args[0])
			if err != nil {
				return spec, err
			}
			spec.Arg = ci.ID
		}
	case "SUM", "AVG", "MIN", "MAX":
		if len(f.Args) != 1 {
			return spec, fmt.Errorf("bind: %s takes one argument", f.Name)
		}
		ci, err := bindArg(f.Args[0])
		if err != nil {
			return spec, err
		}
		spec.Arg = ci.ID
		switch f.Name {
		case "SUM":
			spec.Kind = lplan.AggSum
			outKind = table.KindFloat
			if ci.Kind == table.KindInt {
				outKind = table.KindInt
			}
		case "AVG":
			spec.Kind = lplan.AggAvg
		case "MIN":
			spec.Kind = lplan.AggMin
			outKind = ci.Kind
		case "MAX":
			spec.Kind = lplan.AggMax
			outKind = ci.Kind
		}
	case "SUMIF":
		if len(f.Args) != 2 {
			return spec, fmt.Errorf("bind: SUMIF takes (condition, value)")
		}
		cond, err := bindArg(f.Args[0])
		if err != nil {
			return spec, err
		}
		val, err := bindArg(f.Args[1])
		if err != nil {
			return spec, err
		}
		spec.Kind = lplan.AggSumIf
		spec.Cond = cond.ID
		spec.Arg = val.ID
	case "COUNTIF":
		if len(f.Args) != 1 {
			return spec, fmt.Errorf("bind: COUNTIF takes one argument")
		}
		cond, err := bindArg(f.Args[0])
		if err != nil {
			return spec, err
		}
		spec.Kind = lplan.AggCountIf
		spec.Cond = cond.ID
		outKind = table.KindInt
	case "AVGIF":
		if len(f.Args) != 2 {
			return spec, fmt.Errorf("bind: AVGIF takes (condition, value)")
		}
		cond, err := bindArg(f.Args[0])
		if err != nil {
			return spec, err
		}
		val, err := bindArg(f.Args[1])
		if err != nil {
			return spec, err
		}
		spec.Kind = lplan.AggAvg // AVGIF handled as conditional AVG
		spec.Cond = cond.ID
		spec.Arg = val.ID
	default:
		return spec, fmt.Errorf("bind: unknown aggregate %s", f.Name)
	}
	// Output column: fresh id; origins from argument/condition columns.
	var origins []lplan.BaseCol
	if spec.Arg != lplan.NoColumn {
		origins = append(origins, b.lineage[spec.Arg]...)
	}
	if spec.Cond != lplan.NoColumn {
		origins = append(origins, b.lineage[spec.Cond]...)
	}
	spec.Out = lplan.ColumnInfo{ID: b.newID(), Name: strings.ToLower(f.String()), Kind: outKind, Origins: origins}
	b.recordLineage(spec.Out)
	return spec, nil
}

// bindPostAgg binds an expression in the post-aggregation scope:
// aggregate calls become references to aggregate outputs, group-by
// expressions become references to group columns.
func (b *Binder) bindPostAgg(e sql.Expr, groups map[string]lplan.ColumnInfo, aggs map[string]aggRef) (lplan.Expr, error) {
	if ci, ok := groups[e.String()]; ok {
		return &lplan.ColRef{ID: ci.ID, Name: ci.Name, Kind: ci.Kind}, nil
	}
	switch x := e.(type) {
	case *sql.FuncCall:
		if sql.IsAggregateFunc(x.Name) {
			ref, ok := aggs[x.String()]
			if !ok {
				return nil, fmt.Errorf("bind: aggregate %s not collected", x.String())
			}
			return &lplan.ColRef{ID: ref.col.ID, Name: ref.col.Name, Kind: ref.col.Kind}, nil
		}
		args := make([]lplan.Expr, len(x.Args))
		for i, a := range x.Args {
			bound, err := b.bindPostAgg(a, groups, aggs)
			if err != nil {
				return nil, err
			}
			args[i] = bound
		}
		return &lplan.Func{Name: strings.ToUpper(x.Name), Args: args}, nil
	case *sql.Literal:
		return &lplan.Const{Val: x.Val}, nil
	case *sql.BinaryExpr:
		l, err := b.bindPostAgg(x.L, groups, aggs)
		if err != nil {
			return nil, err
		}
		r, err := b.bindPostAgg(x.R, groups, aggs)
		if err != nil {
			return nil, err
		}
		return &lplan.Binary{Op: lplan.BinOp(x.Op), L: l, R: r}, nil
	case *sql.UnaryExpr:
		in, err := b.bindPostAgg(x.X, groups, aggs)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &lplan.Not{X: in}, nil
		}
		return &lplan.Neg{X: in}, nil
	case *sql.ColumnRef:
		if ci, ok := groups[x.Name]; ok {
			return &lplan.ColRef{ID: ci.ID, Name: ci.Name, Kind: ci.Kind}, nil
		}
		return nil, fmt.Errorf("bind: column %s must appear in GROUP BY or inside an aggregate", x.String())
	case *sql.CaseExpr:
		out := &lplan.Case{}
		for _, w := range x.Whens {
			c, err := b.bindPostAgg(w.Cond, groups, aggs)
			if err != nil {
				return nil, err
			}
			t, err := b.bindPostAgg(w.Then, groups, aggs)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, lplan.When{Cond: c, Then: t})
		}
		if x.Else != nil {
			el, err := b.bindPostAgg(x.Else, groups, aggs)
			if err != nil {
				return nil, err
			}
			out.Else = el
		}
		return out, nil
	case *sql.IsNullExpr:
		in, err := b.bindPostAgg(x.X, groups, aggs)
		if err != nil {
			return nil, err
		}
		return &lplan.IsNull{X: in, Inv: x.Not}, nil
	case *sql.InExpr:
		in, err := b.bindPostAgg(x.X, groups, aggs)
		if err != nil {
			return nil, err
		}
		vals := make([]table.Value, len(x.List))
		for i, item := range x.List {
			lit, ok := item.(*sql.Literal)
			if !ok {
				return nil, fmt.Errorf("bind: IN list must contain literals")
			}
			vals[i] = lit.Val
		}
		return &lplan.In{X: in, Vals: vals, Inv: x.Not}, nil
	}
	return nil, fmt.Errorf("bind: unsupported post-aggregation expression %T (%s)", e, e.String())
}
