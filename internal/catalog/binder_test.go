package catalog

import (
	"strings"
	"testing"

	"quickr/internal/lplan"
	"quickr/internal/sql"
	"quickr/internal/table"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat := New()
	fact := table.New("fact", table.NewSchema(
		table.Column{Name: "f_key", Kind: table.KindInt},
		table.Column{Name: "f_dim", Kind: table.KindInt},
		table.Column{Name: "f_val", Kind: table.KindFloat},
	), 2)
	for i := 0; i < 100; i++ {
		fact.Append(i, table.Row{
			table.NewInt(int64(i)), table.NewInt(int64(i % 10)), table.NewFloat(float64(i)),
		})
	}
	dim := table.New("dim", table.NewSchema(
		table.Column{Name: "d_key", Kind: table.KindInt},
		table.Column{Name: "d_name", Kind: table.KindString},
	), 1)
	for i := 0; i < 10; i++ {
		dim.Append(i, table.Row{table.NewInt(int64(i)), table.NewString("n")})
	}
	cat.Register(fact)
	cat.Register(dim)
	cat.SetPrimaryKey("dim", "d_key")
	return cat
}

func bind(t *testing.T, cat *Catalog, src string) lplan.Node {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewBinder(cat).Bind(stmt)
	if err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	return plan
}

func TestBindResolvesColumns(t *testing.T) {
	cat := testCatalog(t)
	plan := bind(t, cat, "SELECT f_val FROM fact WHERE f_key > 5")
	var sawSelect bool
	lplan.Walk(plan, func(n lplan.Node) {
		if _, ok := n.(*lplan.Select); ok {
			sawSelect = true
		}
	})
	if !sawSelect {
		t.Error("WHERE must become a Select node")
	}
}

func TestBindErrors(t *testing.T) {
	cat := testCatalog(t)
	bad := []string{
		"SELECT missing FROM fact",
		"SELECT f_val FROM missing_table",
		"SELECT fact.f_val, SUM(f_val) FROM fact",            // mixing without GROUP BY
		"SELECT f_val FROM fact GROUP BY f_dim",              // item not grouped
		"SELECT f_key FROM fact ORDER BY f_nonexistent_name", // bad order key
	}
	for _, src := range bad {
		stmt, err := sql.Parse(src)
		if err != nil {
			continue
		}
		if _, err := NewBinder(cat).Bind(stmt); err == nil {
			t.Errorf("expected bind error for %q", src)
		}
	}
}

func TestBindAmbiguousColumn(t *testing.T) {
	cat := New()
	a := table.New("a", table.NewSchema(table.Column{Name: "x", Kind: table.KindInt}), 1)
	b := table.New("b", table.NewSchema(table.Column{Name: "x", Kind: table.KindInt}), 1)
	cat.Register(a)
	cat.Register(b)
	stmt, _ := sql.Parse("SELECT x FROM a JOIN b ON a.x = b.x")
	if _, err := NewBinder(cat).Bind(stmt); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguity not detected: %v", err)
	}
}

func TestBindExtractsEquiJoinKeys(t *testing.T) {
	cat := testCatalog(t)
	plan := bind(t, cat, "SELECT f_val FROM fact JOIN dim ON f_dim = d_key AND f_val > 1")
	var join *lplan.Join
	lplan.Walk(plan, func(n lplan.Node) {
		if j, ok := n.(*lplan.Join); ok {
			join = j
		}
	})
	if join == nil {
		t.Fatal("no join")
	}
	if len(join.LeftKeys) != 1 || len(join.RightKeys) != 1 {
		t.Fatalf("keys: %v %v", join.LeftKeys, join.RightKeys)
	}
	if join.Residual == nil {
		t.Error("non-equi conjunct must stay as residual")
	}
	if !join.FKJoin {
		t.Error("join on dim primary key must be marked FK")
	}
}

func TestBindAggregateShape(t *testing.T) {
	cat := testCatalog(t)
	plan := bind(t, cat, `SELECT f_dim, SUM(f_val) AS s, COUNT(*) AS c
		FROM fact GROUP BY f_dim HAVING SUM(f_val) > 10`)
	var agg *lplan.Aggregate
	var selects int
	lplan.Walk(plan, func(n lplan.Node) {
		switch x := n.(type) {
		case *lplan.Aggregate:
			agg = x
		case *lplan.Select:
			selects++
		}
	})
	if agg == nil || len(agg.Aggs) != 2 || len(agg.GroupCols) != 1 {
		t.Fatalf("aggregate shape: %+v", agg)
	}
	if selects != 1 {
		t.Errorf("HAVING must bind to one Select, got %d", selects)
	}
	// The pre-aggregation projection (the precursor) must sit below.
	if _, ok := agg.Input.(*lplan.Project); !ok {
		t.Errorf("precursor project missing: %T", agg.Input)
	}
}

func TestBindDedupesAggregates(t *testing.T) {
	cat := testCatalog(t)
	plan := bind(t, cat, "SELECT f_dim, SUM(f_val), SUM(f_val) / COUNT(*) FROM fact GROUP BY f_dim")
	var agg *lplan.Aggregate
	lplan.Walk(plan, func(n lplan.Node) {
		if a, ok := n.(*lplan.Aggregate); ok {
			agg = a
		}
	})
	// SUM(f_val) appears twice in the select list but must be computed once.
	if len(agg.Aggs) != 2 {
		t.Errorf("aggs: %d want 2 (SUM deduped + COUNT)", len(agg.Aggs))
	}
}

func TestBindDistinct(t *testing.T) {
	cat := testCatalog(t)
	plan := bind(t, cat, "SELECT DISTINCT f_dim FROM fact")
	var agg *lplan.Aggregate
	lplan.Walk(plan, func(n lplan.Node) {
		if a, ok := n.(*lplan.Aggregate); ok {
			agg = a
		}
	})
	if agg == nil || len(agg.Aggs) != 0 || len(agg.GroupCols) != 1 {
		t.Errorf("DISTINCT must become group-by-all: %+v", agg)
	}
}

func TestBindUnionAll(t *testing.T) {
	cat := testCatalog(t)
	plan := bind(t, cat, "SELECT f_key FROM fact UNION ALL SELECT d_key FROM dim")
	if len(plan.Children()) != 2 {
		t.Fatalf("union children: %d", len(plan.Children()))
	}
	if len(plan.Columns()) != 1 {
		t.Fatalf("union columns: %d", len(plan.Columns()))
	}
	stmt, _ := sql.Parse("SELECT f_key, f_val FROM fact UNION ALL SELECT d_key FROM dim")
	if _, err := NewBinder(cat).Bind(stmt); err == nil {
		t.Error("arity mismatch must be a bind error")
	}
}

func TestBindLineage(t *testing.T) {
	cat := testCatalog(t)
	plan := bind(t, cat, "SELECT f_dim + 1 AS shifted FROM fact")
	cols := plan.Columns()
	if len(cols) != 1 || len(cols[0].Origins) != 1 {
		t.Fatalf("lineage: %+v", cols)
	}
	if cols[0].Origins[0] != (lplan.BaseCol{Table: "fact", Column: "f_dim"}) {
		t.Errorf("origin: %v", cols[0].Origins[0])
	}
}

func TestBindOuterJoinNormalization(t *testing.T) {
	cat := testCatalog(t)
	plan := bind(t, cat, "SELECT f_val FROM dim RIGHT JOIN fact ON f_dim = d_key")
	var join *lplan.Join
	lplan.Walk(plan, func(n lplan.Node) {
		if j, ok := n.(*lplan.Join); ok {
			join = j
		}
	})
	if join == nil || join.Kind != lplan.LeftOuterJoin {
		t.Fatalf("right outer must normalize to left outer: %+v", join)
	}
	// The preserved side (fact) must be on the left after the swap.
	if _, ok := join.Left.(*lplan.Scan); !ok {
		t.Fatalf("left side: %T", join.Left)
	}
	if join.Left.(*lplan.Scan).Table != "fact" {
		t.Errorf("preserved side: %s", join.Left.(*lplan.Scan).Table)
	}
}
