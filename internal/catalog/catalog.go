// Package catalog maintains the table registry, per-table statistics and
// declared key relationships, and binds parsed SQL to the logical
// algebra in internal/lplan.
package catalog

import (
	"fmt"
	"sync"

	"quickr/internal/stats"
	"quickr/internal/table"
)

// Catalog registers tables, their statistics and primary keys.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*table.Table
	pks    map[string][]string // table -> primary key columns
	Stats  *stats.Store
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: map[string]*table.Table{}, pks: map[string][]string{}, Stats: stats.NewStore()}
}

// Register adds (or replaces) a table.
func (c *Catalog) Register(t *table.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[t.Name] = t
}

// SetPrimaryKey declares the primary key columns of a table; used to
// detect foreign-key joins with dimension tables (paper §3: a fact–dim
// FK join is effectively a select).
func (c *Catalog) SetPrimaryKey(tableName string, cols ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pks[tableName] = cols
}

// PrimaryKey returns the declared primary key of a table, if any.
func (c *Catalog) PrimaryKey(tableName string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pks[tableName]
}

// Table looks up a registered table.
func (c *Catalog) Table(name string) (*table.Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", name)
	}
	return t, nil
}

// Tables returns the registered table names.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	return out
}

// TableStats returns statistics for a table, collecting on first use.
func (c *Catalog) TableStats(name string) (*stats.TableStats, error) {
	t, err := c.Table(name)
	if err != nil {
		return nil, err
	}
	return c.Stats.Get(t), nil
}
