package catalog

import (
	"fmt"
	"strings"

	"quickr/internal/lplan"
	"quickr/internal/sql"
	"quickr/internal/table"
)

// bindWindowed builds Project(pre) -> Window -> Project(items) for a
// SELECT whose items contain window functions (paper Table 1 "Others":
// windowed aggregates). Window functions cannot be combined with
// GROUP BY or plain aggregates in the same query block.
func (b *Binder) bindWindowed(sel *sql.SelectStmt, node lplan.Node, sc *scope) (lplan.Node, []lplan.ColumnInfo, error) {
	if len(sel.GroupBy) > 0 || sel.Having != nil {
		return nil, nil, fmt.Errorf("bind: window functions cannot be combined with GROUP BY/HAVING")
	}
	for _, it := range sel.Items {
		if !it.Star && sql.HasAggregate(it.Expr) {
			return nil, nil, fmt.Errorf("bind: window functions cannot be combined with plain aggregates")
		}
	}

	// Pre-projection: every column currently in scope passes through,
	// plus any computed expressions the window specs need.
	var preExprs []lplan.Expr
	var preCols []lplan.ColumnInfo
	preByText := map[string]lplan.ColumnInfo{}
	for _, r := range sc.rels {
		for _, c := range r.cols {
			if _, dup := preByText[c.Name+"#pass"]; dup {
				continue
			}
			preByText[c.Name+"#pass"] = c
			preExprs = append(preExprs, &lplan.ColRef{ID: c.ID, Name: c.Name, Kind: c.Kind})
			preCols = append(preCols, c)
		}
	}
	addPre := func(e sql.Expr) (lplan.ColumnInfo, error) {
		bound, err := b.bindScalar(e, sc)
		if err != nil {
			return lplan.ColumnInfo{}, err
		}
		if cr, ok := bound.(*lplan.ColRef); ok {
			return lplan.ColumnInfo{ID: cr.ID, Name: cr.Name, Kind: cr.Kind}, nil
		}
		key := e.String()
		if ci, ok := preByText[key]; ok {
			return ci, nil
		}
		ci := b.exprColumn(bound, exprName(e))
		b.recordLineage(ci)
		preByText[key] = ci
		preExprs = append(preExprs, bound)
		preCols = append(preCols, ci)
		return ci, nil
	}

	// Collect the window calls.
	winByText := map[string]lplan.ColumnInfo{}
	var specs []lplan.WinSpec
	var collectErr error
	collect := func(e sql.Expr) {
		sql.WalkExpr(e, func(x sql.Expr) {
			f, ok := x.(*sql.FuncCall)
			if !ok || f.Over == nil || collectErr != nil {
				return
			}
			text := f.String()
			if _, seen := winByText[text]; seen {
				return
			}
			spec, err := b.buildWinSpec(f, addPre)
			if err != nil {
				collectErr = err
				return
			}
			specs = append(specs, spec)
			winByText[text] = spec.Out
		})
	}
	for _, it := range sel.Items {
		if it.Star {
			return nil, nil, fmt.Errorf("bind: SELECT * cannot be combined with window functions")
		}
		collect(it.Expr)
	}
	if collectErr != nil {
		return nil, nil, collectErr
	}

	node = &lplan.Project{Input: node, Exprs: preExprs, Cols: preCols}
	win := &lplan.Window{Input: node, Specs: specs}

	// Final projection: window calls become references to the window
	// outputs; everything else binds in the original scope (those
	// columns pass through the Window node).
	var outExprs []lplan.Expr
	var outCols []lplan.ColumnInfo
	for _, it := range sel.Items {
		bound, err := b.bindWithWindows(it.Expr, sc, winByText)
		if err != nil {
			return nil, nil, err
		}
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr)
		}
		ci := b.exprColumn(bound, name)
		b.recordLineage(ci)
		outExprs = append(outExprs, bound)
		outCols = append(outCols, ci)
	}
	return &lplan.Project{Input: win, Exprs: outExprs, Cols: outCols}, outCols, nil
}

// buildWinSpec converts one windowed FuncCall into a WinSpec.
func (b *Binder) buildWinSpec(f *sql.FuncCall, addPre func(sql.Expr) (lplan.ColumnInfo, error)) (lplan.WinSpec, error) {
	spec := lplan.WinSpec{Arg: lplan.NoColumn}
	outKind := table.KindFloat
	switch f.Name {
	case "ROW_NUMBER":
		spec.Kind = lplan.WinRowNumber
		outKind = table.KindInt
	case "RANK":
		spec.Kind = lplan.WinRank
		outKind = table.KindInt
	case "SUM", "COUNT", "AVG", "MIN", "MAX":
		switch f.Name {
		case "SUM":
			spec.Kind = lplan.WinSum
		case "COUNT":
			spec.Kind = lplan.WinCount
			outKind = table.KindInt
		case "AVG":
			spec.Kind = lplan.WinAvg
		case "MIN":
			spec.Kind = lplan.WinMin
		case "MAX":
			spec.Kind = lplan.WinMax
		}
		if !f.Star {
			if len(f.Args) != 1 {
				return spec, fmt.Errorf("bind: window %s takes one argument", f.Name)
			}
			ci, err := addPre(f.Args[0])
			if err != nil {
				return spec, err
			}
			spec.Arg = ci.ID
			if spec.Kind == lplan.WinMin || spec.Kind == lplan.WinMax {
				outKind = ci.Kind
			}
			if spec.Kind == lplan.WinSum && ci.Kind == table.KindInt {
				outKind = table.KindInt
			}
		} else if f.Name != "COUNT" {
			return spec, fmt.Errorf("bind: %s(*) is not a valid window function", f.Name)
		}
	default:
		return spec, fmt.Errorf("bind: %s is not a supported window function", f.Name)
	}
	for _, pe := range f.Over.PartitionBy {
		ci, err := addPre(pe)
		if err != nil {
			return spec, err
		}
		spec.PartitionBy = append(spec.PartitionBy, ci.ID)
	}
	for _, oe := range f.Over.OrderBy {
		ci, err := addPre(oe.Expr)
		if err != nil {
			return spec, err
		}
		spec.OrderBy = append(spec.OrderBy, lplan.SortKey{Col: ci.ID, Desc: oe.Desc})
	}
	spec.Out = lplan.ColumnInfo{ID: b.newID(), Name: strings.ToLower(f.String()), Kind: outKind}
	b.recordLineage(spec.Out)
	return spec, nil
}

// bindWithWindows binds an expression, mapping window function calls to
// their Window-node output columns.
func (b *Binder) bindWithWindows(e sql.Expr, sc *scope, wins map[string]lplan.ColumnInfo) (lplan.Expr, error) {
	if f, ok := e.(*sql.FuncCall); ok && f.Over != nil {
		ci, found := wins[f.String()]
		if !found {
			return nil, fmt.Errorf("bind: window call %s not collected", f.String())
		}
		return &lplan.ColRef{ID: ci.ID, Name: ci.Name, Kind: ci.Kind}, nil
	}
	switch x := e.(type) {
	case *sql.BinaryExpr:
		l, err := b.bindWithWindows(x.L, sc, wins)
		if err != nil {
			return nil, err
		}
		r, err := b.bindWithWindows(x.R, sc, wins)
		if err != nil {
			return nil, err
		}
		return &lplan.Binary{Op: lplan.BinOp(x.Op), L: l, R: r}, nil
	case *sql.UnaryExpr:
		in, err := b.bindWithWindows(x.X, sc, wins)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &lplan.Not{X: in}, nil
		}
		return &lplan.Neg{X: in}, nil
	case *sql.FuncCall:
		args := make([]lplan.Expr, len(x.Args))
		for i, a := range x.Args {
			bound, err := b.bindWithWindows(a, sc, wins)
			if err != nil {
				return nil, err
			}
			args[i] = bound
		}
		return &lplan.Func{Name: strings.ToUpper(x.Name), Args: args}, nil
	default:
		return b.bindScalar(e, sc)
	}
}
