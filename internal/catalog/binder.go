package catalog

import (
	"fmt"
	"strings"

	"quickr/internal/lplan"
	"quickr/internal/sql"
	"quickr/internal/table"
)

// Binder resolves names in a parsed statement against the catalog and
// produces a bound logical plan with globally unique column IDs.
type Binder struct {
	cat    *Catalog
	nextID lplan.ColumnID
	// lineage maps every allocated ColumnID to its base-column origins;
	// ASALQA and the statistics layer consume it through ColumnInfo.
	lineage map[lplan.ColumnID][]lplan.BaseCol
}

// NewBinder creates a binder for one statement.
func NewBinder(cat *Catalog) *Binder { return &Binder{cat: cat, nextID: 1} }

// Bind converts the SELECT AST into a logical plan.
func (b *Binder) Bind(sel *sql.SelectStmt) (lplan.Node, error) {
	node, _, err := b.bindSelect(sel)
	return node, err
}

func (b *Binder) newID() lplan.ColumnID {
	id := b.nextID
	b.nextID++
	return id
}

// scope maps visible relation aliases to their columns.
type scope struct {
	rels  []scopeRel
	outer *scope
}

type scopeRel struct {
	alias string
	cols  []lplan.ColumnInfo
}

func (s *scope) resolve(tbl, col string) (lplan.ColumnInfo, error) {
	var found []lplan.ColumnInfo
	for _, r := range s.rels {
		if tbl != "" && !strings.EqualFold(r.alias, tbl) {
			continue
		}
		for _, c := range r.cols {
			if strings.EqualFold(c.Name, col) {
				found = append(found, c)
			}
		}
	}
	switch len(found) {
	case 1:
		return found[0], nil
	case 0:
		if s.outer != nil {
			return s.outer.resolve(tbl, col)
		}
		if tbl != "" {
			return lplan.ColumnInfo{}, fmt.Errorf("bind: unknown column %s.%s", tbl, col)
		}
		return lplan.ColumnInfo{}, fmt.Errorf("bind: unknown column %s", col)
	default:
		return lplan.ColumnInfo{}, fmt.Errorf("bind: ambiguous column %s", col)
	}
}

func (b *Binder) bindSelect(sel *sql.SelectStmt) (lplan.Node, []lplan.ColumnInfo, error) {
	head, headCols, err := b.bindSelectCore(sel)
	if err != nil {
		return nil, nil, err
	}
	if len(sel.UnionAll) == 0 {
		return head, headCols, nil
	}
	inputs := []lplan.Node{head}
	for _, u := range sel.UnionAll {
		n, cols, err := b.bindSelectCore(u)
		if err != nil {
			return nil, nil, err
		}
		if len(cols) != len(headCols) {
			return nil, nil, fmt.Errorf("bind: UNION ALL arms have %d vs %d columns", len(headCols), len(cols))
		}
		inputs = append(inputs, n)
	}
	// Union output gets fresh column ids; executor aligns positionally.
	outCols := make([]lplan.ColumnInfo, len(headCols))
	for i, c := range headCols {
		origins := append([]lplan.BaseCol{}, c.Origins...)
		for _, in := range inputs[1:] {
			origins = append(origins, in.Columns()[i].Origins...)
		}
		outCols[i] = lplan.ColumnInfo{ID: b.newID(), Name: c.Name, Kind: c.Kind, Origins: origins}
	}
	return &unionWrap{UnionAll: lplan.UnionAll{Inputs: inputs}, cols: outCols}, outCols, nil
}

// unionWrap specializes UnionAll with explicit output columns.
type unionWrap struct {
	lplan.UnionAll
	cols []lplan.ColumnInfo
}

// Columns overrides UnionAll's column passthrough.
func (u *unionWrap) Columns() []lplan.ColumnInfo { return u.cols }

// WithChildren keeps the explicit columns.
func (u *unionWrap) WithChildren(ch []lplan.Node) lplan.Node {
	return &unionWrap{UnionAll: lplan.UnionAll{Inputs: ch}, cols: u.cols}
}

func (b *Binder) bindSelectCore(sel *sql.SelectStmt) (lplan.Node, []lplan.ColumnInfo, error) {
	sc := &scope{}
	var node lplan.Node
	var err error
	if sel.From != nil {
		node, err = b.bindTableExpr(sel.From, sc)
		if err != nil {
			return nil, nil, err
		}
	} else {
		return nil, nil, fmt.Errorf("bind: SELECT without FROM is not supported")
	}

	if sel.Where != nil {
		pred, err := b.bindScalar(sel.Where, sc)
		if err != nil {
			return nil, nil, err
		}
		node = &lplan.Select{Input: node, Pred: pred}
	}

	hasAgg := len(sel.GroupBy) > 0
	hasWin := false
	for _, it := range sel.Items {
		if !it.Star && sql.HasAggregate(it.Expr) {
			hasAgg = true
		}
		if !it.Star && sql.HasWindow(it.Expr) {
			hasWin = true
		}
	}
	if sel.Having != nil {
		hasAgg = true
	}

	var outCols []lplan.ColumnInfo
	if hasWin {
		node, outCols, err = b.bindWindowed(sel, node, sc)
		if err != nil {
			return nil, nil, err
		}
	} else if hasAgg {
		node, outCols, err = b.bindAggregate(sel, node, sc)
		if err != nil {
			return nil, nil, err
		}
	} else {
		node, outCols, err = b.bindPlainProjection(sel, node, sc)
		if err != nil {
			return nil, nil, err
		}
		if sel.Distinct {
			// SELECT DISTINCT == GROUP BY all output columns.
			gids := make([]lplan.ColumnID, len(outCols))
			for i, c := range outCols {
				gids[i] = c.ID
			}
			node = &lplan.Aggregate{Input: node, GroupCols: gids, GroupInfo: outCols}
		}
	}

	// ORDER BY: resolve against output aliases, ordinals, or re-bindable
	// output expressions.
	if len(sel.OrderBy) > 0 {
		keys := make([]lplan.SortKey, 0, len(sel.OrderBy))
		for _, oi := range sel.OrderBy {
			id, err := b.resolveOrderKey(oi.Expr, sel, outCols)
			if err != nil {
				return nil, nil, err
			}
			keys = append(keys, lplan.SortKey{Col: id, Desc: oi.Desc})
		}
		node = &lplan.Sort{Input: node, Keys: keys}
	}
	if sel.Limit >= 0 {
		node = &lplan.Limit{Input: node, N: sel.Limit}
	}
	return node, outCols, nil
}

func (b *Binder) resolveOrderKey(e sql.Expr, sel *sql.SelectStmt, outCols []lplan.ColumnInfo) (lplan.ColumnID, error) {
	// Ordinal?
	if lit, ok := e.(*sql.Literal); ok && lit.Val.Kind() == table.KindInt {
		i := lit.Val.Int()
		if i < 1 || int(i) > len(outCols) {
			return 0, fmt.Errorf("bind: ORDER BY ordinal %d out of range", i)
		}
		return outCols[i-1].ID, nil
	}
	// Alias or column-name match against output.
	if cr, ok := e.(*sql.ColumnRef); ok && cr.Table == "" {
		for _, c := range outCols {
			if strings.EqualFold(c.Name, cr.Name) {
				return c.ID, nil
			}
		}
	}
	// Textual match against a select item.
	want := e.String()
	for i, it := range sel.Items {
		if !it.Star && it.Expr.String() == want {
			return outCols[i].ID, nil
		}
	}
	return 0, fmt.Errorf("bind: ORDER BY key %s must appear in the select list", e.String())
}

func (b *Binder) bindPlainProjection(sel *sql.SelectStmt, node lplan.Node, sc *scope) (lplan.Node, []lplan.ColumnInfo, error) {
	var exprs []lplan.Expr
	var cols []lplan.ColumnInfo
	for _, it := range sel.Items {
		if it.Star {
			for _, r := range sc.rels {
				for _, c := range r.cols {
					exprs = append(exprs, &lplan.ColRef{ID: c.ID, Name: c.Name, Kind: c.Kind})
					cols = append(cols, c)
				}
			}
			continue
		}
		e, err := b.bindScalar(it.Expr, sc)
		if err != nil {
			return nil, nil, err
		}
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr)
		}
		ci := b.exprColumn(e, name)
		exprs = append(exprs, e)
		cols = append(cols, ci)
	}
	return &lplan.Project{Input: node, Exprs: exprs, Cols: cols}, cols, nil
}

// exprColumn derives ColumnInfo for a computed expression: pass-through
// ColRefs keep their ID; anything else gets a fresh ID with merged
// origins.
func (b *Binder) exprColumn(e lplan.Expr, name string) lplan.ColumnInfo {
	if cr, ok := e.(*lplan.ColRef); ok {
		return lplan.ColumnInfo{ID: cr.ID, Name: name, Kind: cr.Kind, Origins: b.originsOf(e)}
	}
	return lplan.ColumnInfo{ID: b.newID(), Name: name, Kind: inferKind(e), Origins: b.originsOf(e)}
}

// originsOf unions base-column lineage across the expression; the binder
// tracks lineage per ColumnID in boundOrigins.
func (b *Binder) originsOf(e lplan.Expr) []lplan.BaseCol {
	seen := map[lplan.BaseCol]bool{}
	var out []lplan.BaseCol
	lplan.WalkExpr(e, func(x lplan.Expr) {
		if cr, ok := x.(*lplan.ColRef); ok {
			for _, o := range b.lineage[cr.ID] {
				if !seen[o] {
					seen[o] = true
					out = append(out, o)
				}
			}
		}
	})
	return out
}

func exprName(e sql.Expr) string {
	if cr, ok := e.(*sql.ColumnRef); ok {
		return cr.Name
	}
	s := e.String()
	if len(s) > 40 {
		s = s[:40]
	}
	return s
}

func (b *Binder) bindTableExpr(te sql.TableExpr, sc *scope) (lplan.Node, error) {
	switch t := te.(type) {
	case *sql.TableName:
		tbl, err := b.cat.Table(t.Name)
		if err != nil {
			return nil, err
		}
		cols := make([]lplan.ColumnInfo, tbl.Schema.Len())
		for i, c := range tbl.Schema.Cols {
			ci := lplan.ColumnInfo{
				ID:      b.newID(),
				Name:    c.Name,
				Kind:    c.Kind,
				Origins: []lplan.BaseCol{{Table: tbl.Name, Column: c.Name}},
			}
			cols[i] = ci
			b.recordLineage(ci)
		}
		alias := t.Alias
		if alias == "" {
			alias = t.Name
		}
		sc.rels = append(sc.rels, scopeRel{alias: alias, cols: cols})
		// Base-table scans are unweighted; apriori-sample substitution
		// (analysis.substituteScan) is what sets a weight column later.
		return &lplan.Scan{Table: tbl.Name, Cols: cols, WeightColumn: ""}, nil
	case *sql.JoinExpr:
		left, err := b.bindTableExpr(t.Left, sc)
		if err != nil {
			return nil, err
		}
		right, err := b.bindTableExpr(t.Right, sc)
		if err != nil {
			return nil, err
		}
		join := &lplan.Join{Left: left, Right: right}
		switch t.Kind {
		case sql.JoinInner:
			join.Kind = lplan.InnerJoin
		case sql.JoinLeftOuter:
			join.Kind = lplan.LeftOuterJoin
		case sql.JoinRightOuter:
			// Normalize RIGHT OUTER to LEFT OUTER by swapping inputs.
			join.Kind = lplan.LeftOuterJoin
			join.Left, join.Right = right, left
		default:
			return nil, fmt.Errorf("bind: unsupported join kind %v", t.Kind)
		}
		if t.On != nil {
			on, err := b.bindScalar(t.On, sc)
			if err != nil {
				return nil, err
			}
			b.extractJoinKeys(join, on)
		}
		b.markFKJoin(join)
		return join, nil
	case *sql.Subquery:
		sub, cols, err := b.bindSelect(t.Select)
		if err != nil {
			return nil, err
		}
		sc.rels = append(sc.rels, scopeRel{alias: t.Alias, cols: cols})
		return sub, nil
	}
	return nil, fmt.Errorf("bind: unsupported table expression %T", te)
}

// extractJoinKeys splits an ON condition into equi-key pairs and a
// residual predicate.
func (b *Binder) extractJoinKeys(j *lplan.Join, on lplan.Expr) {
	leftIDs := lplan.OutputIDs(j.Left)
	rightIDs := lplan.OutputIDs(j.Right)
	var residuals []lplan.Expr
	var visit func(e lplan.Expr)
	visit = func(e lplan.Expr) {
		if bin, ok := e.(*lplan.Binary); ok {
			if bin.Op == lplan.OpAnd {
				visit(bin.L)
				visit(bin.R)
				return
			}
			if bin.Op == lplan.OpEq {
				lc, lok := bin.L.(*lplan.ColRef)
				rc, rok := bin.R.(*lplan.ColRef)
				if lok && rok {
					switch {
					case leftIDs.Has(lc.ID) && rightIDs.Has(rc.ID):
						j.LeftKeys = append(j.LeftKeys, lc.ID)
						j.RightKeys = append(j.RightKeys, rc.ID)
						return
					case leftIDs.Has(rc.ID) && rightIDs.Has(lc.ID):
						j.LeftKeys = append(j.LeftKeys, rc.ID)
						j.RightKeys = append(j.RightKeys, lc.ID)
						return
					}
				}
			}
		}
		residuals = append(residuals, e)
	}
	visit(on)
	j.Residual = conjoin(residuals)
}

func conjoin(es []lplan.Expr) lplan.Expr {
	var out lplan.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &lplan.Binary{Op: lplan.OpAnd, L: out, R: e}
		}
	}
	return out
}

// markFKJoin marks joins whose right side is a base-table scan joined on
// its full declared primary key.
func (b *Binder) markFKJoin(j *lplan.Join) {
	scan, ok := j.Right.(*lplan.Scan)
	if !ok || len(j.RightKeys) == 0 {
		return
	}
	pk := b.cat.PrimaryKey(scan.Table)
	if len(pk) == 0 || len(pk) != len(j.RightKeys) {
		return
	}
	match := 0
	for _, id := range j.RightKeys {
		if ci, ok := lplan.ColumnByID(scan.Cols, id); ok {
			for _, p := range pk {
				if strings.EqualFold(ci.Name, p) {
					match++
					break
				}
			}
		}
	}
	j.FKJoin = match == len(pk)
}

// lineage maps ColumnID to base columns (populated as columns are
// created).
func (b *Binder) recordLineage(ci lplan.ColumnInfo) {
	if b.lineage == nil {
		b.lineage = map[lplan.ColumnID][]lplan.BaseCol{}
	}
	b.lineage[ci.ID] = ci.Origins
}
