package trace

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{NumInputs: 500, NumQueries: 2000, Seed: 9})
	b := Generate(Config{NumInputs: 500, NumQueries: 2000, Seed: 9})
	if len(a.Queries) != len(b.Queries) {
		t.Fatal("nondeterministic query count")
	}
	for i := range a.Queries {
		if a.Queries[i].ClusterHours != b.Queries[i].ClusterHours {
			t.Fatal("nondeterministic cluster hours")
		}
	}
}

func TestHeavyTailShape(t *testing.T) {
	tr := Generate(DefaultConfig())
	size, frac := tr.HeavyTailCurve()
	if len(size) == 0 || len(size) != len(frac) {
		t.Fatal("empty curve")
	}
	// Monotone non-decreasing in both axes.
	for i := 1; i < len(size); i++ {
		if size[i] < size[i-1] || frac[i] < frac[i-1]-1e-12 {
			t.Fatal("curve not monotone")
		}
	}
	if math.Abs(frac[len(frac)-1]-1) > 1e-9 {
		t.Errorf("curve must end at 1, got %v", frac[len(frac)-1])
	}
	// The defining heavy-tail property (paper Fig. 2a): the first half
	// of cluster time needs far less input than the rest.
	var halfIdx int
	for i, f := range frac {
		if f >= 0.5 {
			halfIdx = i
			break
		}
	}
	halfSize := size[halfIdx]
	total := size[len(size)-1]
	if halfSize > 0.45*total {
		t.Errorf("not heavy-tailed: half the time touches %.1f of %.1f PB", halfSize, total)
	}
}

func TestPercentilesMonotone(t *testing.T) {
	tr := Generate(Config{NumInputs: 500, NumQueries: 5000, Seed: 4})
	rows := tr.Percentiles([]float64{25, 50, 75, 90, 95})
	for name, vals := range rows {
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				t.Errorf("%s percentiles not monotone: %v", name, vals)
			}
		}
	}
	// Median query must be complex (paper: ~3 joins, ~192 operators).
	if rows["# Joins"][1] < 1 {
		t.Errorf("median joins %v", rows["# Joins"][1])
	}
	if rows["# operators"][1] < 50 {
		t.Errorf("median operators %v", rows["# operators"][1])
	}
	if rows["# of Passes over Data"][1] < 1.5 {
		t.Errorf("median passes %v", rows["# of Passes over Data"][1])
	}
}
