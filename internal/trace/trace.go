// Package trace synthesizes a production-cluster query trace with the
// distributional properties §3 of the paper reports for Microsoft's
// Cosmos clusters: heavy-tailed usage of inputs (jobs covering half the
// cluster-hours touch ~20PB of distinct files, Fig. 2a), and complex
// queries (the Fig. 2b percentile table: effective passes over data,
// operator counts and depth, joins, aggregations, user-defined
// functions, and query column/value set sizes). The real trace is
// proprietary; this generator is calibrated so the reproduced figures
// preserve the paper's shapes.
package trace

import (
	"math"
	"math/rand"
	"sort"
)

// Config controls the synthesized trace.
type Config struct {
	NumInputs  int
	NumQueries int
	Seed       int64
}

// DefaultConfig sizes the trace for the experiments.
func DefaultConfig() Config {
	return Config{NumInputs: 4000, NumQueries: 60000, Seed: 31337}
}

// Input is one distinct dataset in the cluster.
type Input struct {
	ID int
	// SizeTB is the file size in terabytes (Pareto distributed).
	SizeTB float64
	// Popularity weights how often queries reference the input.
	Popularity float64
}

// Query is one synthesized job with the §3 complexity metrics.
type Query struct {
	Inputs        []int
	ClusterHours  float64
	Passes        float64
	FirstPassFrac float64 // first-pass duration / total duration
	Operators     int
	Depth         int
	Aggregations  int
	Joins         int
	UDAs          int
	UDFs          int
	QCSQVS        int
}

// Trace is the synthesized workload.
type Trace struct {
	Inputs  []Input
	Queries []Query
}

// Generate synthesizes the trace.
func Generate(cfg Config) *Trace {
	if cfg.NumInputs == 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{}

	// Input sizes: Pareto with a heavy tail; popularity: Zipf so a small
	// set of inputs serves most queries.
	for i := 0; i < cfg.NumInputs; i++ {
		size := 0.05 * math.Pow(1-rng.Float64(), -0.8) // TB, heavy tail
		if size > 2000 {
			size = 2000
		}
		pop := 1.0 / math.Pow(float64(i+1), 1.1)
		t.Inputs = append(t.Inputs, Input{ID: i, SizeTB: size, Popularity: pop})
	}
	// Popularity is over a random permutation of sizes, so big inputs
	// are not automatically popular.
	perm := rng.Perm(cfg.NumInputs)
	cum := make([]float64, cfg.NumInputs)
	total := 0.0
	for i, p := range perm {
		total += t.Inputs[p].Popularity
		cum[i] = total
	}
	pickInput := func() int {
		x := rng.Float64() * total
		i := sort.SearchFloat64s(cum, x)
		if i >= cfg.NumInputs {
			i = cfg.NumInputs - 1
		}
		return perm[i]
	}

	for q := 0; q < cfg.NumQueries; q++ {
		nIn := 1 + poissonish(rng, 1.2)
		ins := map[int]bool{}
		for len(ins) < nIn {
			ins[pickInput()] = true
		}
		inputs := make([]int, 0, len(ins))
		for id := range ins {
			inputs = append(inputs, id)
		}
		sort.Ints(inputs)
		// Sum in sorted order: float addition order must be stable for
		// deterministic generation.
		var sizeSum float64
		for _, id := range inputs {
			sizeSum += t.Inputs[id].SizeTB
		}

		// Complexity knobs calibrated against Fig. 2b percentiles.
		joins := quantized(rng, []int{1, 2, 3, 5, 8, 11, 27}, []float64{0.15, 0.25, 0.25, 0.15, 0.1, 0.07, 0.03})
		aggs := quantized(rng, []int{1, 2, 3, 6, 9, 37, 112}, []float64{0.2, 0.2, 0.25, 0.15, 0.1, 0.07, 0.03})
		ops := int(105 + 16*float64(joins+aggs) + rng.ExpFloat64()*110)
		depth := int(15 + 2.4*float64(joins) + rng.ExpFloat64()*7)
		passes := 1.15 + 0.3*float64(joins) + rng.ExpFloat64()*0.55
		udfs := quantized(rng, []int{2, 7, 18, 27, 45, 127, 260}, []float64{0.15, 0.2, 0.2, 0.18, 0.15, 0.08, 0.04})
		udas := quantized(rng, []int{0, 0, 1, 2, 3, 5, 9}, []float64{0.35, 0.2, 0.18, 0.12, 0.08, 0.05, 0.02})
		qcs := quantized(rng, []int{2, 4, 8, 16, 24, 49, 104}, []float64{0.15, 0.2, 0.25, 0.15, 0.12, 0.09, 0.04})

		hours := sizeSum * passes * (0.5 + rng.ExpFloat64())
		t.Queries = append(t.Queries, Query{
			Inputs:        inputs,
			ClusterHours:  hours,
			Passes:        passes,
			FirstPassFrac: 1 / (1.1 + 0.35*(passes-1) + rng.ExpFloat64()*0.5),
			Operators:     ops,
			Depth:         depth,
			Aggregations:  aggs,
			Joins:         joins,
			UDAs:          udas,
			UDFs:          udfs,
			QCSQVS:        qcs,
		})
	}
	return t
}

func poissonish(rng *rand.Rand, mean float64) int {
	n := 0
	for rng.Float64() < mean/(mean+1) && n < 6 {
		n++
		mean *= 0.6
	}
	return n
}

// quantized draws one of vals with the given probabilities, jittering
// between neighbours.
func quantized(rng *rand.Rand, vals []int, probs []float64) int {
	x := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if x <= acc {
			v := vals[i]
			if i+1 < len(vals) && rng.Float64() < 0.5 {
				v += rng.Intn(vals[i+1] - vals[i] + 1)
			}
			return v
		}
	}
	return vals[len(vals)-1]
}

// HeavyTailCurve computes the Fig. 2a series: cumulative fraction of
// cluster time versus cumulative size of distinct input files, with
// cluster hours apportioned to inputs proportional to input size.
func (t *Trace) HeavyTailCurve() (cumSizePB, cumFrac []float64) {
	hours := make([]float64, len(t.Inputs))
	for _, q := range t.Queries {
		var sizeSum float64
		for _, id := range q.Inputs {
			sizeSum += t.Inputs[id].SizeTB
		}
		if sizeSum == 0 {
			continue
		}
		for _, id := range q.Inputs {
			hours[id] += q.ClusterHours * t.Inputs[id].SizeTB / sizeSum
		}
	}
	type rec struct {
		hours float64
		size  float64
	}
	recs := make([]rec, len(t.Inputs))
	var totalHours float64
	for i := range t.Inputs {
		recs[i] = rec{hours: hours[i], size: t.Inputs[i].SizeTB}
		totalHours += hours[i]
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].hours > recs[j].hours })
	var cs, ch float64
	for _, r := range recs {
		cs += r.size
		ch += r.hours
		cumSizePB = append(cumSizePB, cs/1000) // TB -> PB
		cumFrac = append(cumFrac, ch/totalHours)
	}
	return cumSizePB, cumFrac
}

// Percentiles computes the Fig. 2b table rows for the synthesized
// queries at the given percentiles (e.g. 25, 50, 75, 90, 95).
func (t *Trace) Percentiles(ps []float64) map[string][]float64 {
	get := func(f func(Query) float64) []float64 {
		xs := make([]float64, len(t.Queries))
		for i, q := range t.Queries {
			xs[i] = f(q)
		}
		sort.Float64s(xs)
		out := make([]float64, len(ps))
		for i, p := range ps {
			idx := int(p / 100 * float64(len(xs)-1))
			out[i] = xs[idx]
		}
		return out
	}
	return map[string][]float64{
		"# of Passes over Data":     get(func(q Query) float64 { return q.Passes }),
		"1/firstpass duration frac": get(func(q Query) float64 { return 1 / q.FirstPassFrac }),
		"# operators":               get(func(q Query) float64 { return float64(q.Operators) }),
		"depth of operators":        get(func(q Query) float64 { return float64(q.Depth) }),
		"# Aggregation Ops.":        get(func(q Query) float64 { return float64(q.Aggregations) }),
		"# Joins":                   get(func(q Query) float64 { return float64(q.Joins) }),
		"# user-defined aggs.":      get(func(q Query) float64 { return float64(q.UDAs) }),
		"# user-defined functions":  get(func(q Query) float64 { return float64(q.UDFs) }),
		"size of QCS+QVS":           get(func(q Query) float64 { return float64(q.QCSQVS) }),
	}
}
