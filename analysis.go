package quickr

import (
	"io"
	"sort"

	"quickr/internal/catalog"
	"quickr/internal/exec"
	"quickr/internal/lplan"
	"quickr/internal/opt"
	"quickr/internal/sql"
	"quickr/internal/table"
)

// QueryStats are static characteristics of a query's optimized plan,
// matching the metrics of the paper's Fig. 2b / Table 3 / Table 9:
// operator counts and depth, joins, aggregation operators, scalar UDF
// applications, and the sizes of the query column set (QCS — columns
// that appear in the answer or decide which rows belong in it) and
// query value set (QVS — columns feeding aggregates), with generated
// columns recursively replaced by their base columns.
type QueryStats struct {
	Operators    int
	Depth        int
	Joins        int
	Aggregations int
	UDFs         int
	QCS          int
	QVS          int
	QCSPlusQVS   int
}

// Analyze parses, binds and normalizes the query and computes its
// static characteristics.
func (e *Engine) Analyze(query string) (*QueryStats, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	binder := catalog.NewBinder(e.cat)
	logical, err := binder.Bind(stmt)
	if err != nil {
		return nil, err
	}
	est := opt.NewEstimator(e.cat)
	logical = opt.Normalize(logical, est)

	st := &QueryStats{
		Operators: lplan.Count(logical),
		Depth:     lplan.Depth(logical),
	}
	qcs := map[lplan.BaseCol]bool{}
	qvs := map[lplan.BaseCol]bool{}
	addOrigins := func(set map[lplan.BaseCol]bool, n lplan.Node, ids []lplan.ColumnID) {
		cols := n.Columns()
		for _, id := range ids {
			if ci, ok := lplan.ColumnByID(cols, id); ok {
				for _, o := range ci.Origins {
					set[o] = true
				}
			}
		}
	}
	lplan.Walk(logical, func(n lplan.Node) {
		switch x := n.(type) {
		case *lplan.Join:
			st.Joins++
			addOrigins(qcs, x, append(append([]lplan.ColumnID{}, x.LeftKeys...), x.RightKeys...))
		case *lplan.Aggregate:
			st.Aggregations += len(x.Aggs)
			if len(x.Aggs) == 0 {
				st.Aggregations++ // SELECT DISTINCT
			}
			addOrigins(qcs, x.Input, x.GroupCols)
			for _, a := range x.Aggs {
				ids := []lplan.ColumnID{}
				if a.Arg != lplan.NoColumn {
					ids = append(ids, a.Arg)
				}
				if a.Cond != lplan.NoColumn {
					ids = append(ids, a.Cond)
				}
				addOrigins(qvs, x.Input, ids)
			}
		case *lplan.Select:
			ids := make([]lplan.ColumnID, 0, 4)
			for id := range lplan.ExprColumns(x.Pred) {
				ids = append(ids, id)
			}
			addOrigins(qcs, x.Input, ids)
			st.UDFs += countUDFs(x.Pred)
		case *lplan.Project:
			for _, ex := range x.Exprs {
				st.UDFs += countUDFs(ex)
			}
		}
	})
	st.QCS = len(qcs)
	st.QVS = len(qvs)
	union := map[lplan.BaseCol]bool{}
	for c := range qcs {
		union[c] = true
	}
	for c := range qvs {
		union[c] = true
	}
	st.QCSPlusQVS = len(union)
	return st, nil
}

// countUDFs counts row-local computed expressions: explicit scalar
// functions plus arithmetic/CASE/LIKE expressions — in SCOPE-style
// systems these are all user code compiled into the operators, which is
// what the paper's UDF counts measure.
func countUDFs(e lplan.Expr) int {
	n := 0
	lplan.WalkExpr(e, func(x lplan.Expr) {
		switch y := x.(type) {
		case *lplan.Func, *lplan.Case, *lplan.Like:
			n++
		case *lplan.Binary:
			// Connectives are plan structure; everything else (arithmetic
			// and comparisons) compiles to row-local user code in
			// SCOPE-style systems.
			if y.Op != lplan.OpAnd && y.Op != lplan.OpOr {
				n++
			}
		case *lplan.In, *lplan.IsNull:
			n++
		}
	})
	return n
}

// QueryColumnSets returns, per base table, the QCS of the query (the
// stratification column sets an apriori-sampling system like BlinkDB
// would need): group-by columns, filter columns and join keys, mapped
// to their origin tables.
func (e *Engine) QueryColumnSets(query string) (map[string][]string, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	binder := catalog.NewBinder(e.cat)
	logical, err := binder.Bind(stmt)
	if err != nil {
		return nil, err
	}
	est := opt.NewEstimator(e.cat)
	logical = opt.Normalize(logical, est)

	perTable := map[string]map[string]bool{}
	add := func(n lplan.Node, ids []lplan.ColumnID) {
		cols := n.Columns()
		for _, id := range ids {
			if ci, ok := lplan.ColumnByID(cols, id); ok {
				for _, o := range ci.Origins {
					if perTable[o.Table] == nil {
						perTable[o.Table] = map[string]bool{}
					}
					perTable[o.Table][o.Column] = true
				}
			}
		}
	}
	lplan.Walk(logical, func(n lplan.Node) {
		switch x := n.(type) {
		case *lplan.Join:
			add(x, append(append([]lplan.ColumnID{}, x.LeftKeys...), x.RightKeys...))
		case *lplan.Aggregate:
			add(x.Input, x.GroupCols)
		case *lplan.Select:
			ids := make([]lplan.ColumnID, 0, 4)
			for id := range lplan.ExprColumns(x.Pred) {
				ids = append(ids, id)
			}
			add(x.Input, ids)
		}
	})
	out := map[string][]string{}
	for tbl, cols := range perTable {
		var list []string
		for c := range cols {
			list = append(list, c)
		}
		sort.Strings(list)
		out[tbl] = list
	}
	return out, nil
}

// UsesTable reports whether the query reads the named base table.
func (e *Engine) UsesTable(query, tableName string) bool {
	qcs, err := e.QueryColumnSets(query)
	if err != nil {
		return false
	}
	_, ok := qcs[tableName]
	return ok
}

// ExecWithSample runs the query with every scan of baseTable replaced
// by a scan of sampleTable, whose trailing `_w` column carries per-row
// weights (the apriori-sampling execution path used by the BlinkDB
// baseline). The sample table is registered in the catalog on first
// use.
func (e *Engine) ExecWithSample(query, baseTable string, sample *table.Table) (*Result, error) {
	if _, err := e.cat.Table(sample.Name); err != nil {
		e.cat.Register(sample)
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	binder := catalog.NewBinder(e.cat)
	logical, err := binder.Bind(stmt)
	if err != nil {
		return nil, err
	}
	est := opt.NewEstimator(e.cat)
	cm := opt.NewCostModel(est, e.cfg)
	logical = opt.Normalize(logical, est)
	logical = substituteScan(logical, baseTable, sample.Name)

	// Estimator config: the sample behaves like a stratified input
	// sample; report uniform-style confidence intervals from weights.
	ratio := 1.0
	if base, err := e.cat.Table(baseTable); err == nil && base.NumRows() > 0 {
		ratio = float64(sample.NumRows()) / float64(base.NumRows())
		if ratio > 1 {
			ratio = 1
		}
	}
	planner := &opt.Planner{CM: cm, EstCfg: &exec.EstimatorConfig{Type: lplan.SamplerDistinct, P: ratio}}
	physical, err := planner.Plan(logical)
	if err != nil {
		return nil, err
	}
	res, err := exec.Run(physical, e.cfg)
	if err != nil {
		return nil, err
	}
	return newResult(res, &prepared{sampled: true, physical: physical, logical: logical}), nil
}

// substituteScan swaps scans of one table for another (schema-
// compatible) table, attaching the weight column.
func substituteScan(n lplan.Node, from, to string) lplan.Node {
	ch := n.Children()
	if len(ch) > 0 {
		newCh := make([]lplan.Node, len(ch))
		for i, c := range ch {
			newCh[i] = substituteScan(c, from, to)
		}
		n = n.WithChildren(newCh)
	}
	if s, ok := n.(*lplan.Scan); ok && s.Table == from {
		return &lplan.Scan{Table: to, Cols: s.Cols, WeightColumn: "_w"}
	}
	return n
}

// BoundPlan parses, binds and normalizes a query and returns the
// (unsampled) logical plan — used by in-module tooling such as the
// reference-implementation cross-check.
func (e *Engine) BoundPlan(query string) (lplan.Node, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	binder := catalog.NewBinder(e.cat)
	logical, err := binder.Bind(stmt)
	if err != nil {
		return nil, err
	}
	est := opt.NewEstimator(e.cat)
	return opt.Normalize(logical, est), nil
}

// SaveStats serializes every collected table statistic as JSON (the
// paper's statistics are computed once by the first query that reads a
// table; persisting them keeps the warm start across restarts).
func (e *Engine) SaveStats(w io.Writer) error { return e.cat.Stats.Save(w) }

// LoadStats restores previously saved statistics, so optimization does
// not need a first full pass over each table.
func (e *Engine) LoadStats(r io.Reader) error { return e.cat.Stats.Load(r) }
