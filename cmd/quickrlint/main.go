// Command quickrlint runs the project-specific static analyzers over
// the repository and fails (exit 1) on any finding. It is the lint
// counterpart to internal/plancheck: plancheck verifies the plans the
// optimizer emits at run time; quickrlint verifies the code that
// builds them, before it runs.
//
// Usage:
//
//	quickrlint [packages]       # default ./...
//	quickrlint -list            # describe the analyzers
//	quickrlint -soundness 500   # also prove the optimizer's rewrite
//	                            # rules over 500 generated plans
//
// Analyzers: the syntactic walkers norawrand, slotdiscipline,
// weightprop and noprintf, plus the CFG/dataflow analyzers
// lockdiscipline, ctxflow, hotalloc and arenasafe (see internal/lint).
// Broken //lint:ignore directives — missing a reason, or left behind
// after the finding they suppressed is gone — are reported under the
// pseudo-analyzer ignorehygiene. Suppress a single finding with a
// `//lint:ignore <analyzer> <reason>` comment on or above the line.
//
// With -soundness N the command additionally runs the rewrite-
// soundness prover (internal/opt/soundness): every rule in the
// optimizer's registry is applied to N randomly generated legal plans
// and checked for schema, weight-algebra, plancheck and idempotence
// preservation, with partition-prune decisions re-derived exactly.
// Any problem report names the seed that reproduces it.
package main

import (
	"flag"
	"fmt"
	"os"

	"quickr/internal/lint"
	"quickr/internal/opt/soundness"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	plans := flag.Int("soundness", 0, "also run the optimizer rewrite-soundness prover over this many generated plans")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	diags, err := lint.Run(".", flag.Args(), analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickrlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "quickrlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}

	if *plans > 0 {
		st := soundness.Sweep(*plans, 1)
		for _, p := range st.Problems {
			fmt.Println(p)
		}
		fmt.Fprintf(os.Stderr, "quickrlint: soundness: %s\n", st.Summary())
		if len(st.Problems) > 0 {
			os.Exit(1)
		}
	}
}
