// Command quickrlint runs the project-specific static analyzers over
// the repository and fails (exit 1) on any finding. It is the lint
// counterpart to internal/plancheck: plancheck verifies the plans the
// optimizer emits at run time; quickrlint verifies the code that
// builds them, before it runs.
//
// Usage:
//
//	quickrlint [packages]       # default ./...
//	quickrlint -list            # describe the analyzers
//
// Analyzers: norawrand, slotdiscipline, weightprop, noprintf (see
// internal/lint). Suppress a single finding with a
// `//lint:ignore <analyzer> <reason>` comment on or above the line.
package main

import (
	"flag"
	"fmt"
	"os"

	"quickr/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	diags, err := lint.Run(".", flag.Args(), analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickrlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "quickrlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
