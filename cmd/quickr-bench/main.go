// Command quickr-bench regenerates every table and figure from the
// paper's evaluation (§5) on the bundled synthetic workloads.
//
// Usage:
//
//	quickr-bench [-exp all|F1|F2a|F2b|T3|T4|T5|T6|T7|T8|T9|F8a|F8b|F8c|F9|SMOKE|BENCH] [-sf 1.0] [-json dir]
//	             [-batch 0] [-columnar] [-prune] [-sample-cache N] [-contract] [-dashboard]
//	             [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//
// SMOKE runs a tiny per-suite query subset; BENCH runs the full query
// suites. With -json, both write a machine-readable BENCH_<exp>.json
// run report (per-query gains, errors, sampler rate checks, and
// per-operator execution counters) into the given directory; CI's
// cmd/benchcheck validates that file's schema.
//
// -dashboard additionally runs the repeated-query dashboard workload
// (N panels × M refreshes, exact vs cold-approximate vs cached-
// approximate under a concurrent hammer) and writes DASH_<exp>.json;
// `benchcheck -dashboard` gates it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"quickr/internal/experiments"
	"quickr/internal/profiling"
	"quickr/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (F1,F2a,F2b,T3..T9,F8a..F8c,F9,SMOKE,BENCH) or 'all'")
	sf := flag.Float64("sf", 1.0, "scale factor for the synthetic datasets")
	jsonDir := flag.String("json", "", "directory to write BENCH_<exp>.json reports into (SMOKE/BENCH)")
	batch := flag.Int("batch", 0, "executor batch size in rows (0 = default, <0 = materialize whole partitions)")
	columnar := flag.Bool("columnar", false, "run streamed pipelines on the vectorized columnar executor (ignored when -batch < 0)")
	prune := flag.Bool("prune", false, "enable the optimizer's partition-selection pruning pass for sampled plans")
	sampleCache := flag.Int64("sample-cache", 0, "enable hot-sample reuse with this byte budget for the whole run (0 = off)")
	contract := flag.Bool("contract", false, "also run the error-contract suite (cold+warm) and write CONTRACT_<exp>.json (SMOKE/BENCH)")
	dashboard := flag.Bool("dashboard", false, "also run the repeated-query dashboard workload and write DASH_<exp>.json (SMOKE/BENCH)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the bench run to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit (go tool pprof)")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	want := map[string]bool{}
	for _, e := range strings.Split(strings.ToUpper(*exp), ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["ALL"]
	need := func(id string) bool { return all || want[id] }

	var env *experiments.Env
	getEnv := func() *experiments.Env {
		if env == nil {
			fmt.Fprintf(os.Stderr, "loading synthetic TPC-DS/TPC-H/log datasets at sf=%.2g...\n", *sf)
			env = experiments.NewFullEnv(*sf)
			env.Eng.SetBatchSize(*batch)
			env.Eng.SetColumnar(*columnar)
			env.Eng.SetPrune(*prune)
			env.Eng.SetSampleCache(*sampleCache)
			if *columnar && *batch >= 0 {
				fmt.Fprintln(os.Stderr, "warming columnar partition caches...")
				env.Eng.WarmColumnar()
			}
		}
		return env
	}
	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
		os.Exit(1)
	}
	section := func(s string) { fmt.Println("\n" + strings.Repeat("=", 80) + "\n" + s) }

	// SMOKE/BENCH emit machine-readable run reports; they are opt-in
	// (not part of 'all', which regenerates the paper's human-readable
	// tables and figures).
	contractDone := false
	runContract := func(id string) {
		if !*contract || contractDone {
			return
		}
		contractDone = true
		crep, err := experiments.BuildContractReport(getEnv(), id, *sf)
		if err != nil {
			fail(id, err)
		}
		esc, hits := 0, 0
		for _, r := range crep.Runs {
			esc += r.Contract.Escalations
			hits += r.Contract.PlanCacheHits
		}
		fmt.Printf("%s: %d contract runs, %d violations, %d escalations, %d plan-cache hits\n",
			id, len(crep.Runs), crep.Violations, esc, hits)
		if *jsonDir != "" {
			path, err := crep.Write(*jsonDir)
			if err != nil {
				fail(id, err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if crep.Violations > 0 {
			fail(id, fmt.Errorf("%d contract violations", crep.Violations))
		}
	}
	dashboardDone := false
	runDashboard := func(id string) {
		if !*dashboard || dashboardDone {
			return
		}
		dashboardDone = true
		drep, err := experiments.BuildDashboardReport(getEnv(), id, *sf, 32, 32)
		if err != nil {
			fail(id, err)
		}
		fmt.Printf("%s dashboard: %d panels x %d refreshes, %d workers: exact=%.1f qps, cold=%.1f qps, cached=%.1f qps (%.2fx vs exact, %.2fx vs cold), %d hash mismatches\n",
			id, drep.Panels, drep.Refreshes, drep.Workers,
			drep.ExactQPS, drep.ColdQPS, drep.CachedQPS,
			drep.CachedVsExact, drep.CachedVsCold, drep.HashMismatches)
		if *jsonDir != "" {
			path, err := drep.Write(*jsonDir)
			if err != nil {
				fail(id, err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if drep.HashMismatches > 0 {
			fail(id, fmt.Errorf("%d panels differ between cold and cached runs", drep.HashMismatches))
		}
	}
	runReport := func(id string, queries []workload.Query) {
		rep, err := experiments.BuildBenchReport(getEnv(), queries, id, *sf)
		if err != nil {
			fail(id, err)
		}
		sampled, failures := 0, 0
		for _, q := range rep.Queries {
			if q.Sampled {
				sampled++
			}
			failures += q.RateFailures
		}
		fmt.Printf("%s: %d queries (%d sampled), %d sampler rate failures\n",
			id, len(rep.Queries), sampled, failures)
		if *jsonDir != "" {
			path, err := rep.Write(*jsonDir)
			if err != nil {
				fail(id, err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		if failures > 0 {
			fail(id, fmt.Errorf("%d sampler rate invariants failed", failures))
		}
	}
	if want["SMOKE"] {
		runReport("SMOKE", experiments.SmokeQueries())
		runContract("SMOKE")
		runDashboard("SMOKE")
	}
	if want["BENCH"] {
		var all []workload.Query
		all = append(all, workload.TPCDSQueries()...)
		all = append(all, workload.TPCHQueries()...)
		all = append(all, workload.OtherQueries()...)
		runReport("BENCH", all)
		runContract("BENCH")
		runDashboard("BENCH")
	}
	if (want["SMOKE"] || want["BENCH"]) && len(want) == 1 {
		return
	}

	// The Fig. 1 universe plan (also unrolled by Fig. 9) needs enough
	// customers per (color, year) group before ASALQA's accuracy checks
	// admit it; those two experiments run at scale factor >= 10.
	var f1env *experiments.Env
	getF1Env := func() *experiments.Env {
		if f1env == nil {
			if *sf >= 10 {
				f1env = getEnv()
			} else {
				fmt.Fprintln(os.Stderr, "F1/F9: loading a dedicated sf=10 TPC-DS dataset (the universe plan needs the scale)...")
				f1env = experiments.NewTPCDSEnv(10)
			}
		}
		return f1env
	}
	if need("F1") {
		r, err := experiments.Fig1(getF1Env())
		if err != nil {
			fail("F1", err)
		}
		section(r.Render())
	}
	if need("F2A") {
		section(experiments.Fig2a().Render())
	}
	if need("F2B") {
		section(experiments.Fig2b().Render())
	}
	if need("T3") {
		r, err := experiments.Table3(getEnv())
		if err != nil {
			fail("T3", err)
		}
		section(r.Render())
	}
	if need("T4") {
		r, err := experiments.Table4(getEnv())
		if err != nil {
			fail("T4", err)
		}
		section(r.Render())
	}
	if need("T5") {
		r, err := experiments.Table5(getEnv())
		if err != nil {
			fail("T5", err)
		}
		section(r.Render())
	}
	if need("T6") {
		// Default parameters (large stratum caps) and the small-group
		// tuning, as in the paper.
		// The paper's default cap K=M=1e5 applies to 500GB inputs; the
		// scale-equivalent default here is K=200 (1e5 × sf/500).
		for _, k := range []int{200, 10} {
			r, err := experiments.Table6(getEnv(), k, []float64{0.5, 1, 4, 10})
			if err != nil {
				fail("T6", err)
			}
			section(r.Render())
		}
	}
	if need("T7") {
		r, err := experiments.Table7(getEnv())
		if err != nil {
			fail("T7", err)
		}
		section(r.Render())
	}
	if need("T8") {
		section(experiments.Table8().Render())
	}
	if need("T9") {
		r, err := experiments.Table9(getEnv())
		if err != nil {
			fail("T9", err)
		}
		section(r.Render())
	}
	if need("F8A") || need("F8B") || need("F8C") {
		r, err := experiments.Fig8(getEnv())
		if err != nil {
			fail("F8", err)
		}
		if need("F8A") {
			section(r.RenderA())
		}
		if need("F8B") {
			section(r.RenderB())
		}
		if need("F8C") {
			section(experiments.RenderFig8c(r.Fig8c(getEnv())))
		}
	}
	if need("F9") {
		r, err := experiments.Fig9(getF1Env())
		if err != nil {
			fail("F9", err)
		}
		section(r.Render())
	}
}
