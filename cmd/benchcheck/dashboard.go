package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// dashboardFields are required on the DASH_*.json top level.
var dashboardFields = []string{
	"experiment", "panels", "refreshes", "workers", "cores", "jobs",
	"cache_budget", "exact_qps", "cold_qps", "cached_qps",
	"cached_vs_exact", "cached_vs_cold",
	"cache_hits", "cache_misses", "hash_mismatches", "panel_hashes",
}

// dashReport mirrors the fields of a DASH_*.json report the gate
// reasons about.
type dashReport struct {
	Panels         int     `json:"panels"`
	Refreshes      int     `json:"refreshes"`
	Workers        int     `json:"workers"`
	Cores          int     `json:"cores"`
	Jobs           int     `json:"jobs"`
	ExactQPS       float64 `json:"exact_qps"`
	ColdQPS        float64 `json:"cold_qps"`
	CachedQPS      float64 `json:"cached_qps"`
	CacheHits      int64   `json:"cache_hits"`
	HashMismatches int     `json:"hash_mismatches"`
	PanelHashes    []struct {
		ID         string `json:"id"`
		ColdHash   string `json:"cold_hash"`
		CachedHash string `json:"cached_hash"`
		Match      bool   `json:"match"`
	} `json:"panel_hashes"`
}

// checkDashboard gates a DASH_<exp>.json report: every panel's cached
// result bit-identical to its cold result (always, on any machine), the
// cache actually serving hits, and — where the machine can run queries
// in parallel — cached-approximate throughput strictly above both the
// exact baseline and the cold-approximate lazy path. A sample cache
// that returns different bits or fails to beat re-sampling is a
// regression either way.
func checkDashboard(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		return fmt.Errorf("not a dashboard report: %w", err)
	}
	for _, k := range dashboardFields {
		if _, ok := fields[k]; !ok {
			return fmt.Errorf("missing top-level field %q", k)
		}
	}
	var r dashReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return err
	}
	if r.Panels == 0 || r.Refreshes == 0 || r.Jobs != r.Panels*r.Refreshes {
		return fmt.Errorf("workload shape invalid: %d panels x %d refreshes != %d jobs", r.Panels, r.Refreshes, r.Jobs)
	}
	if len(r.PanelHashes) != r.Panels {
		return fmt.Errorf("%d panel hashes for %d panels", len(r.PanelHashes), r.Panels)
	}
	for _, p := range r.PanelHashes {
		if p.ColdHash == "" || p.CachedHash == "" {
			return fmt.Errorf("%s: missing result hash (report predates the oracle fields?)", p.ID)
		}
		if !p.Match || p.ColdHash != p.CachedHash {
			return fmt.Errorf("%s: cached result diverges from cold: %s vs %s — warm replays must be bit-identical",
				p.ID, p.ColdHash[:12], p.CachedHash[:12])
		}
	}
	if r.HashMismatches != 0 {
		return fmt.Errorf("%d hash mismatches reported", r.HashMismatches)
	}
	if r.ExactQPS <= 0 || r.ColdQPS <= 0 || r.CachedQPS <= 0 {
		return fmt.Errorf("throughput not measured: exact=%.3f cold=%.3f cached=%.3f", r.ExactQPS, r.ColdQPS, r.CachedQPS)
	}
	if r.CacheHits == 0 {
		return fmt.Errorf("cached pass recorded zero cache hits: the sample cache never served a replay")
	}
	// Throughput dominance only where parallel execution is physically
	// possible — the same exemption the concurrency gate uses.
	if r.Cores >= 2 {
		if r.CachedQPS <= r.ExactQPS {
			return fmt.Errorf("cached QPS %.2f not above exact %.2f on a %d-core machine", r.CachedQPS, r.ExactQPS, r.Cores)
		}
		if r.CachedQPS <= r.ColdQPS {
			return fmt.Errorf("cached QPS %.2f not above cold-approximate %.2f on a %d-core machine", r.CachedQPS, r.ColdQPS, r.Cores)
		}
	}
	fmt.Printf("%s: ok (%d panels x %d refreshes, %d workers: exact %.1f, cold %.1f, cached %.1f qps, %d cache hits, 0 mismatches)\n",
		path, r.Panels, r.Refreshes, r.Workers, r.ExactQPS, r.ColdQPS, r.CachedQPS, r.CacheHits)
	return nil
}
