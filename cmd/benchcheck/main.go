// Command benchcheck validates the schema of the BENCH_*.json run
// reports quickr-bench writes. CI runs it after the smoke bench so a
// refactor that silently drops per-operator counters (or renames a
// field dashboards consume) fails the build instead of producing empty
// reports.
//
// Usage:
//
//	benchcheck BENCH_SMOKE.json [more.json...]
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// operatorFields are required on every operator entry: the per-operator
// counters the observability layer promises.
var operatorFields = []string{
	"id", "kind", "detail", "depth", "est_rows", "partitions",
	"rows_in", "rows_out", "bytes_in", "bytes_out", "wall_ms",
	"batches", "peak_bytes",
	"sampler_seen", "sampler_passed", "sampler_rate",
	"sketch_entries", "build_rows", "probe_rows",
}

// metricsFields are required on every run's cluster-metrics block.
var metricsFields = []string{
	"machine_hours", "runtime", "intermediate_bytes", "shuffled_bytes",
	"passes", "tasks", "stages", "optimize_seconds",
	"peak_inflight_bytes", "rows_per_sec", "exec_seconds",
	"queued_seconds", "admitted_bytes", "pool_wait_seconds",
	"pool_tasks", "pool_stolen",
}

// concurrencyFields are required on the report's serial-vs-concurrent
// throughput block.
var concurrencyFields = []string{
	"workers", "cores", "jobs", "serial_qps", "concurrent_qps", "speedup",
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck BENCH_<exp>.json [more.json...]")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		if errs := checkFile(path); len(errs) > 0 {
			bad++
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, e)
			}
		} else {
			fmt.Printf("%s: ok\n", path)
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

func checkFile(path string) []error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return []error{err}
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return []error{fmt.Errorf("not a JSON object: %w", err)}
	}
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	for _, k := range []string{"experiment", "scale_factor", "queries"} {
		if _, ok := top[k]; !ok {
			fail("missing top-level field %q", k)
		}
	}
	var queries []map[string]json.RawMessage
	if q, ok := top["queries"]; ok {
		if err := json.Unmarshal(q, &queries); err != nil {
			fail("queries is not an array of objects: %v", err)
		}
	}
	if len(queries) == 0 {
		fail("report contains no queries")
	}
	// Streaming-vs-materializing footprint gate: summed over the
	// report's queries, the batched executor's peak in-flight bytes must
	// stay strictly below what materializing every intermediate held.
	var peakStreaming, peakMaterialized float64
	for i, q := range queries {
		qname := fmt.Sprintf("queries[%d]", i)
		if id, ok := q["id"]; ok {
			var s string
			if json.Unmarshal(id, &s) == nil && s != "" {
				qname = s
			}
		} else {
			fail("%s: missing id", qname)
		}
		for _, k := range []string{"sampled", "rate_checks", "rate_failures", "approx"} {
			if _, ok := q[k]; !ok {
				fail("%s: missing field %q", qname, k)
			}
		}
		for _, k := range []string{"peak_inflight_bytes", "peak_materialized_bytes"} {
			raw, ok := q[k]
			if !ok {
				fail("%s: missing field %q", qname, k)
				continue
			}
			var v float64
			if err := json.Unmarshal(raw, &v); err != nil {
				fail("%s: %s is not a number: %v", qname, k, err)
				continue
			}
			if k == "peak_inflight_bytes" {
				peakStreaming += v
			} else {
				peakMaterialized += v
			}
		}
		var nFail int
		if rf, ok := q["rate_failures"]; ok {
			if json.Unmarshal(rf, &nFail) == nil && nFail > 0 {
				fail("%s: %d sampler rate invariants failed", qname, nFail)
			}
		}
		approx, ok := q["approx"]
		if !ok {
			continue
		}
		var run map[string]json.RawMessage
		if err := json.Unmarshal(approx, &run); err != nil {
			fail("%s: approx is not an object: %v", qname, err)
			continue
		}
		var mblock map[string]json.RawMessage
		if m, ok := run["metrics"]; !ok {
			fail("%s: approx missing metrics", qname)
		} else if err := json.Unmarshal(m, &mblock); err != nil {
			fail("%s: approx.metrics is not an object: %v", qname, err)
		} else {
			for _, k := range metricsFields {
				if _, ok := mblock[k]; !ok {
					fail("%s: approx.metrics missing %q", qname, k)
				}
			}
		}
		var ops []map[string]json.RawMessage
		if o, ok := run["operators"]; !ok {
			fail("%s: approx missing operators", qname)
			continue
		} else if err := json.Unmarshal(o, &ops); err != nil {
			fail("%s: approx.operators is not an array: %v", qname, err)
			continue
		}
		if len(ops) == 0 {
			fail("%s: approx.operators is empty", qname)
		}
		for j, op := range ops {
			for _, k := range operatorFields {
				if _, ok := op[k]; !ok {
					fail("%s: operators[%d] missing %q", qname, j, k)
				}
			}
		}
	}
	if peakMaterialized > 0 && peakStreaming >= peakMaterialized {
		fail("streaming peak in-flight bytes (%.0f) not below materializing baseline (%.0f)",
			peakStreaming, peakMaterialized)
	}

	// Concurrency throughput gate: the shared-engine concurrent pass must
	// beat serial submission — but only where the machine can actually
	// run queries in parallel (single-core CI runners are exempt).
	if craw, ok := top["concurrency"]; !ok {
		fail("missing top-level field %q", "concurrency")
	} else {
		var conc map[string]json.RawMessage
		if err := json.Unmarshal(craw, &conc); err != nil {
			fail("concurrency is not an object: %v", err)
		} else {
			for _, k := range concurrencyFields {
				if _, ok := conc[k]; !ok {
					fail("concurrency missing %q", k)
				}
			}
			var cores int
			var serial, concurrent float64
			json.Unmarshal(conc["cores"], &cores)
			json.Unmarshal(conc["serial_qps"], &serial)
			json.Unmarshal(conc["concurrent_qps"], &concurrent)
			if serial <= 0 || concurrent <= 0 {
				fail("concurrency throughput not measured: serial=%.3f concurrent=%.3f", serial, concurrent)
			} else if cores >= 2 && concurrent <= serial {
				fail("concurrent QPS %.2f not above serial %.2f on a %d-core machine",
					concurrent, serial, cores)
			}
		}
	}
	return errs
}
