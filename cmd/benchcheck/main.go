// Command benchcheck validates the schema of the BENCH_*.json run
// reports quickr-bench writes. CI runs it after the smoke bench so a
// refactor that silently drops per-operator counters (or renames a
// field dashboards consume) fails the build instead of producing empty
// reports.
//
// With -micro it instead gates `go test -bench -benchmem` output
// against a committed baseline: each baseline benchmark must be present
// and its allocs/op (a deterministic, machine-independent counter) must
// stay within max_allocs_ratio of the recorded value; ns/op gets a
// deliberately generous max_ns_ratio since CI hardware varies.
//
// With -oracle it compares two BENCH_*.json reports of the same
// workload produced by different executor modes (row-at-a-time vs
// columnar): every query must appear in both with identical result row
// counts and result hashes, so any bitwise divergence between the two
// executors fails the build.
//
// With -prune it compares an unpruned report against one produced with
// partition-selection pruning enabled: the pruned run must actually
// skip partitions (total partitions_scanned strictly below the
// unpruned run, at least one query with partitions_pruned > 0), so a
// regression that silently disables the pass fails the build.
//
// With -contract it gates the CONTRACT_*.json report the contract
// suite writes: zero contract violations, the escalation path actually
// exercised, warm-pass retries served from the plan cache, and warm
// escalations no worse than cold (the learned correction loop must not
// regress).
//
// With -dashboard it gates the DASH_*.json report the repeated-query
// dashboard benchmark writes: every panel's cached-approximate result
// bit-identical to its cold-approximate result, and (on multicore
// machines) cached-approximate throughput strictly above both the
// exact baseline and the cold lazy path.
//
// Usage:
//
//	benchcheck BENCH_SMOKE.json [more.json...]
//	benchcheck -micro -baseline internal/exec/testdata/bench_baseline.json bench.txt
//	benchcheck -oracle row/BENCH_BENCH.json columnar/BENCH_BENCH.json
//	benchcheck -prune full/BENCH_BENCH.json pruned/BENCH_BENCH.json
//	benchcheck -contract CONTRACT_SMOKE.json
//	benchcheck -dashboard DASH_SMOKE.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// operatorFields are required on every operator entry: the per-operator
// counters the observability layer promises.
var operatorFields = []string{
	"id", "kind", "detail", "depth", "est_rows", "partitions",
	"rows_in", "rows_out", "bytes_in", "bytes_out", "wall_ms",
	"batches", "peak_bytes",
	"sampler_seen", "sampler_passed", "sampler_rate",
	"sketch_entries", "build_rows", "probe_rows",
}

// metricsFields are required on every run's cluster-metrics block.
var metricsFields = []string{
	"machine_hours", "runtime", "intermediate_bytes", "shuffled_bytes",
	"passes", "tasks", "stages", "optimize_seconds",
	"peak_inflight_bytes", "rows_per_sec", "exec_seconds",
	"queued_seconds", "admitted_bytes", "pool_wait_seconds",
	"pool_tasks", "pool_stolen",
	"partitions_scanned", "partitions_pruned",
}

// concurrencyFields are required on the report's serial-vs-concurrent
// throughput block.
var concurrencyFields = []string{
	"workers", "cores", "jobs", "serial_qps", "concurrent_qps", "speedup",
}

func main() {
	micro := flag.Bool("micro", false, "gate `go test -bench -benchmem` output against -baseline instead of checking report schemas")
	baseline := flag.String("baseline", "", "baseline JSON for -micro (committed allocs/op and ns/op ceilings)")
	oracle := flag.Bool("oracle", false, "compare two reports of the same workload from different executor modes; result hashes must match")
	prune := flag.Bool("prune", false, "compare an unpruned report against a pruned one; the pruned run must scan strictly fewer partitions")
	contract := flag.Bool("contract", false, "gate a CONTRACT_<exp>.json report: zero violations, escalation retries served from the plan cache")
	dashboard := flag.Bool("dashboard", false, "gate a DASH_<exp>.json report: cached results bit-identical to cold, cached QPS above exact and cold on multicore")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck BENCH_<exp>.json [more.json...]")
		fmt.Fprintln(os.Stderr, "       benchcheck -micro -baseline baseline.json bench.txt")
		fmt.Fprintln(os.Stderr, "       benchcheck -oracle row.json columnar.json")
		fmt.Fprintln(os.Stderr, "       benchcheck -prune full.json pruned.json")
		fmt.Fprintln(os.Stderr, "       benchcheck -contract CONTRACT_<exp>.json")
		fmt.Fprintln(os.Stderr, "       benchcheck -dashboard DASH_<exp>.json")
		os.Exit(2)
	}
	if *micro {
		if err := checkMicro(*baseline, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck -micro:", err)
			os.Exit(1)
		}
		return
	}
	if *oracle {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchcheck -oracle: need exactly two report files")
			os.Exit(2)
		}
		if err := checkOracle(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck -oracle:", err)
			os.Exit(1)
		}
		return
	}
	if *prune {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchcheck -prune: need exactly two report files (unpruned, pruned)")
			os.Exit(2)
		}
		if err := checkPrune(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck -prune:", err)
			os.Exit(1)
		}
		return
	}
	if *contract {
		bad := 0
		for _, path := range flag.Args() {
			if err := checkContract(path); err != nil {
				bad++
				fmt.Fprintf(os.Stderr, "benchcheck -contract: %s: %v\n", path, err)
			}
		}
		if bad > 0 {
			os.Exit(1)
		}
		return
	}
	if *dashboard {
		bad := 0
		for _, path := range flag.Args() {
			if err := checkDashboard(path); err != nil {
				bad++
				fmt.Fprintf(os.Stderr, "benchcheck -dashboard: %s: %v\n", path, err)
			}
		}
		if bad > 0 {
			os.Exit(1)
		}
		return
	}
	bad := 0
	for _, path := range flag.Args() {
		if errs := checkFile(path); len(errs) > 0 {
			bad++
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, e)
			}
		} else {
			fmt.Printf("%s: ok\n", path)
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

func checkFile(path string) []error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return []error{err}
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return []error{fmt.Errorf("not a JSON object: %w", err)}
	}
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	for _, k := range []string{"experiment", "scale_factor", "queries"} {
		if _, ok := top[k]; !ok {
			fail("missing top-level field %q", k)
		}
	}
	var queries []map[string]json.RawMessage
	if q, ok := top["queries"]; ok {
		if err := json.Unmarshal(q, &queries); err != nil {
			fail("queries is not an array of objects: %v", err)
		}
	}
	if len(queries) == 0 {
		fail("report contains no queries")
	}
	// Streaming-vs-materializing footprint gate: summed over the
	// report's queries, the batched executor's peak in-flight bytes must
	// stay strictly below what materializing every intermediate held.
	var peakStreaming, peakMaterialized float64
	for i, q := range queries {
		qname := fmt.Sprintf("queries[%d]", i)
		if id, ok := q["id"]; ok {
			var s string
			if json.Unmarshal(id, &s) == nil && s != "" {
				qname = s
			}
		} else {
			fail("%s: missing id", qname)
		}
		for _, k := range []string{"sampled", "rate_checks", "rate_failures", "approx"} {
			if _, ok := q[k]; !ok {
				fail("%s: missing field %q", qname, k)
			}
		}
		for _, k := range []string{"peak_inflight_bytes", "peak_materialized_bytes"} {
			raw, ok := q[k]
			if !ok {
				fail("%s: missing field %q", qname, k)
				continue
			}
			var v float64
			if err := json.Unmarshal(raw, &v); err != nil {
				fail("%s: %s is not a number: %v", qname, k, err)
				continue
			}
			if k == "peak_inflight_bytes" {
				peakStreaming += v
			} else {
				peakMaterialized += v
			}
		}
		var nFail int
		if rf, ok := q["rate_failures"]; ok {
			if json.Unmarshal(rf, &nFail) == nil && nFail > 0 {
				fail("%s: %d sampler rate invariants failed", qname, nFail)
			}
		}
		approx, ok := q["approx"]
		if !ok {
			continue
		}
		var run map[string]json.RawMessage
		if err := json.Unmarshal(approx, &run); err != nil {
			fail("%s: approx is not an object: %v", qname, err)
			continue
		}
		var mblock map[string]json.RawMessage
		if m, ok := run["metrics"]; !ok {
			fail("%s: approx missing metrics", qname)
		} else if err := json.Unmarshal(m, &mblock); err != nil {
			fail("%s: approx.metrics is not an object: %v", qname, err)
		} else {
			for _, k := range metricsFields {
				if _, ok := mblock[k]; !ok {
					fail("%s: approx.metrics missing %q", qname, k)
				}
			}
		}
		var ops []map[string]json.RawMessage
		if o, ok := run["operators"]; !ok {
			fail("%s: approx missing operators", qname)
			continue
		} else if err := json.Unmarshal(o, &ops); err != nil {
			fail("%s: approx.operators is not an array: %v", qname, err)
			continue
		}
		if len(ops) == 0 {
			fail("%s: approx.operators is empty", qname)
		}
		for j, op := range ops {
			for _, k := range operatorFields {
				if _, ok := op[k]; !ok {
					fail("%s: operators[%d] missing %q", qname, j, k)
				}
			}
		}
	}
	if peakMaterialized > 0 && peakStreaming >= peakMaterialized {
		fail("streaming peak in-flight bytes (%.0f) not below materializing baseline (%.0f)",
			peakStreaming, peakMaterialized)
	}

	// Concurrency throughput gate: the shared-engine concurrent pass must
	// beat serial submission — but only where the machine can actually
	// run queries in parallel (single-core CI runners are exempt).
	if craw, ok := top["concurrency"]; !ok {
		fail("missing top-level field %q", "concurrency")
	} else {
		var conc map[string]json.RawMessage
		if err := json.Unmarshal(craw, &conc); err != nil {
			fail("concurrency is not an object: %v", err)
		} else {
			for _, k := range concurrencyFields {
				if _, ok := conc[k]; !ok {
					fail("concurrency missing %q", k)
				}
			}
			var cores int
			var serial, concurrent float64
			json.Unmarshal(conc["cores"], &cores)
			json.Unmarshal(conc["serial_qps"], &serial)
			json.Unmarshal(conc["concurrent_qps"], &concurrent)
			if serial <= 0 || concurrent <= 0 {
				fail("concurrency throughput not measured: serial=%.3f concurrent=%.3f", serial, concurrent)
			} else if cores >= 2 && concurrent <= serial {
				fail("concurrent QPS %.2f not above serial %.2f on a %d-core machine",
					concurrent, serial, cores)
			}
		}
	}
	return errs
}

// oracleEntry is the slice of a query report the oracle diff needs.
type oracleEntry struct {
	ResultRows int    `json:"result_rows"`
	ResultHash string `json:"result_hash"`
}

// loadOracle reads a BENCH report's per-query result fingerprints.
func loadOracle(path string) (map[string]oracleEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep struct {
		Queries []struct {
			ID string `json:"id"`
			oracleEntry
		} `json:"queries"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]oracleEntry{}
	for _, q := range rep.Queries {
		if q.ResultHash == "" {
			return nil, fmt.Errorf("%s: query %s has no result_hash (report predates the oracle fields?)", path, q.ID)
		}
		out[q.ID] = q.oracleEntry
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: report contains no queries", path)
	}
	return out, nil
}

// checkOracle diffs two reports of the same workload produced by
// different executor modes: both must cover the same query set with
// identical result row counts and hashes.
func checkOracle(pathA, pathB string) error {
	a, err := loadOracle(pathA)
	if err != nil {
		return err
	}
	b, err := loadOracle(pathB)
	if err != nil {
		return err
	}
	ids := make([]string, 0, len(a))
	for id := range a {
		ids = append(ids, id)
	}
	sortStrings(ids)
	var fails []string
	for _, id := range ids {
		ea := a[id]
		eb, ok := b[id]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: present in %s but missing from %s", id, pathA, pathB))
			continue
		}
		switch {
		case ea.ResultRows != eb.ResultRows:
			fails = append(fails, fmt.Sprintf("%s: %d rows vs %d rows", id, ea.ResultRows, eb.ResultRows))
		case ea.ResultHash != eb.ResultHash:
			fails = append(fails, fmt.Sprintf("%s: result hash mismatch (%d rows): %s vs %s",
				id, ea.ResultRows, ea.ResultHash[:12], eb.ResultHash[:12]))
		}
	}
	for id := range b {
		if _, ok := a[id]; !ok {
			fails = append(fails, fmt.Sprintf("%s: present in %s but missing from %s", id, pathB, pathA))
		}
	}
	if len(fails) > 0 {
		sortStrings(fails)
		return fmt.Errorf("%d query result(s) diverge between executor modes:\n  %s",
			len(fails), strings.Join(fails, "\n  "))
	}
	fmt.Printf("oracle: %d queries bit-identical across %s and %s\n", len(ids), pathA, pathB)
	return nil
}

// pruneEntry is the slice of a query's approx run the prune gate needs.
type pruneEntry struct {
	scanned, pruned int64
}

// loadPrune reads a BENCH report's per-query partition counters.
func loadPrune(path string) (map[string]pruneEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep struct {
		Queries []struct {
			ID     string `json:"id"`
			Approx struct {
				Metrics struct {
					Scanned *int64 `json:"partitions_scanned"`
					Pruned  *int64 `json:"partitions_pruned"`
				} `json:"metrics"`
			} `json:"approx"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]pruneEntry{}
	for _, q := range rep.Queries {
		m := q.Approx.Metrics
		if m.Scanned == nil || m.Pruned == nil {
			return nil, fmt.Errorf("%s: query %s has no partition counters (report predates the pruning fields?)", path, q.ID)
		}
		out[q.ID] = pruneEntry{scanned: *m.Scanned, pruned: *m.Pruned}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: report contains no queries", path)
	}
	return out, nil
}

// checkPrune compares an unpruned report against a pruned one of the
// same workload: over the shared query set, the pruned run must scan
// strictly fewer partitions in total and prune at least one query, and
// no query may scan more partitions pruned than unpruned.
func checkPrune(fullPath, prunedPath string) error {
	full, err := loadPrune(fullPath)
	if err != nil {
		return err
	}
	pruned, err := loadPrune(prunedPath)
	if err != nil {
		return err
	}
	ids := make([]string, 0, len(full))
	for id := range full {
		if _, ok := pruned[id]; ok {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("no shared queries between %s and %s", fullPath, prunedPath)
	}
	sortStrings(ids)
	var totalFull, totalPruned, skipped int64
	queriesPruned := 0
	var fails []string
	for _, id := range ids {
		f, p := full[id], pruned[id]
		totalFull += f.scanned
		totalPruned += p.scanned
		skipped += p.pruned
		if p.pruned > 0 {
			queriesPruned++
		}
		if f.pruned > 0 {
			fails = append(fails, fmt.Sprintf("%s: unpruned run reports %d partitions_pruned (pass leaked into the baseline?)", id, f.pruned))
		}
		if p.scanned > f.scanned {
			fails = append(fails, fmt.Sprintf("%s: pruned run scanned %d partitions vs %d unpruned", id, p.scanned, f.scanned))
		}
	}
	if queriesPruned == 0 {
		fails = append(fails, "no query pruned any partition — the pass never fired")
	}
	if totalPruned >= totalFull {
		fails = append(fails, fmt.Sprintf("pruned run scanned %d total partitions, not below unpruned %d", totalPruned, totalFull))
	}
	if len(fails) > 0 {
		sortStrings(fails)
		return fmt.Errorf("%d prune gate failure(s):\n  %s", len(fails), strings.Join(fails, "\n  "))
	}
	fmt.Printf("prune: %d/%d queries pruned; %d partitions scanned vs %d unpruned (%d skipped)\n",
		queriesPruned, len(ids), totalPruned, totalFull, skipped)
	return nil
}

// microBaseline is the committed micro-benchmark baseline: per
// benchmark, the pre-optimization allocs/op and ns/op plus the ratios
// current runs must stay within. allocs/op is exact and deterministic,
// so max_allocs_ratio is the real gate (0.7 = "at least 30% fewer
// allocations than the baseline, forever"); ns/op is machine-dependent
// and gets a generous ceiling purely to catch order-of-magnitude
// regressions.
type microBaseline struct {
	Note       string                `json:"note,omitempty"`
	Benchmarks map[string]microEntry `json:"benchmarks"`
}

type microEntry struct {
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	MaxAllocsRatio float64 `json:"max_allocs_ratio"`
	MaxNsRatio     float64 `json:"max_ns_ratio"`
}

type microResult struct {
	nsPerOp     float64
	allocsPerOp float64
}

// parseBenchFile extracts Benchmark lines from `go test -bench
// -benchmem` output ("-" = stdin). The trailing -N GOMAXPROCS suffix is
// stripped so baselines are portable across core counts.
func parseBenchFile(path string) (map[string]microResult, error) {
	var in *os.File
	if path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	out := map[string]microResult{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res microResult
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.nsPerOp = v
				seen = true
			case "allocs/op":
				res.allocsPerOp = v
				seen = true
			}
		}
		if seen {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// checkMicro compares parsed benchmark results against the baseline.
// Every baseline benchmark must be present in the results — a renamed
// or deleted benchmark cannot silently drop out of the gate.
func checkMicro(baselinePath string, files []string) error {
	if baselinePath == "" {
		return fmt.Errorf("-micro requires -baseline")
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base microBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks in baseline", baselinePath)
	}
	got := map[string]microResult{}
	for _, f := range files {
		res, err := parseBenchFile(f)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		for k, v := range res {
			got[k] = v
		}
	}
	var fails []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		cur, ok := got[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: missing from bench output", name))
			continue
		}
		allocCeil := b.AllocsPerOp * b.MaxAllocsRatio
		nsCeil := b.NsPerOp * b.MaxNsRatio
		status := "ok"
		if cur.allocsPerOp > allocCeil {
			status = "FAIL"
			fails = append(fails, fmt.Sprintf("%s: %.0f allocs/op exceeds ceiling %.0f (%.2f x baseline %.0f, limit %.2fx)",
				name, cur.allocsPerOp, allocCeil, cur.allocsPerOp/b.AllocsPerOp, b.AllocsPerOp, b.MaxAllocsRatio))
		}
		if b.MaxNsRatio > 0 && cur.nsPerOp > nsCeil {
			status = "FAIL"
			fails = append(fails, fmt.Sprintf("%s: %.0f ns/op exceeds ceiling %.0f (%.2f x baseline %.0f, limit %.2fx)",
				name, cur.nsPerOp, nsCeil, cur.nsPerOp/b.NsPerOp, b.NsPerOp, b.MaxNsRatio))
		}
		fmt.Printf("%-28s %s  allocs/op %8.0f (ceiling %8.0f)  ns/op %12.0f\n",
			name, status, cur.allocsPerOp, allocCeil, cur.nsPerOp)
	}
	if len(fails) > 0 {
		return fmt.Errorf("%d gate failure(s):\n  %s", len(fails), strings.Join(fails, "\n  "))
	}
	return nil
}

// sortStrings is a tiny insertion sort to keep the import set lean.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
