package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// contractFields are required on every run's contract block. Fields
// with omitempty semantics (error_target, the rel-err triple,
// deadline_seconds) are legitimately absent on some runs and are not
// listed.
var contractFields = []string{
	"confidence", "chosen_p", "attempts", "escalations",
	"plan_cache_hits", "satisfied", "exact", "history_hit",
}

// contractRun mirrors the fields of one CONTRACT_*.json run entry the
// gate reasons about.
type contractRun struct {
	ID       string `json:"id"`
	Pass     string `json:"pass"`
	Contract *struct {
		Attempts      int  `json:"attempts"`
		Escalations   int  `json:"escalations"`
		PlanCacheHits int  `json:"plan_cache_hits"`
		Satisfied     bool `json:"satisfied"`
	} `json:"contract"`
}

// checkContract gates a CONTRACT_<exp>.json report: zero contract
// violations, the escalation path actually exercised, escalation
// retries served from the plan cache (the warm pass replays the cold
// pass's rung walk against cached plans), and warm escalations no worse
// than cold — the learned correction loop must not regress.
func checkContract(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var top struct {
		Experiment string            `json:"experiment"`
		Runs       []json.RawMessage `json:"runs"`
		Violations *int              `json:"violations"`
	}
	if err := json.Unmarshal(raw, &top); err != nil {
		return fmt.Errorf("not a contract report: %w", err)
	}
	if top.Violations == nil {
		return fmt.Errorf("missing top-level field %q", "violations")
	}
	if len(top.Runs) == 0 {
		return fmt.Errorf("report contains no contract runs")
	}
	if *top.Violations > 0 {
		return fmt.Errorf("%d contract violations", *top.Violations)
	}

	var coldEsc, warmEsc, warmHits, totalEsc int
	for i, rawRun := range top.Runs {
		// Schema first: a refactor that drops a counter dashboards (or
		// this gate) consumes must fail loudly, not read as zero.
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(rawRun, &fields); err != nil {
			return fmt.Errorf("runs[%d]: not an object: %w", i, err)
		}
		var cblock map[string]json.RawMessage
		if c, ok := fields["contract"]; !ok {
			return fmt.Errorf("runs[%d]: missing contract block", i)
		} else if err := json.Unmarshal(c, &cblock); err != nil {
			return fmt.Errorf("runs[%d]: contract is not an object: %w", i, err)
		}
		for _, k := range contractFields {
			if _, ok := cblock[k]; !ok {
				return fmt.Errorf("runs[%d]: contract missing %q", i, k)
			}
		}

		var r contractRun
		if err := json.Unmarshal(rawRun, &r); err != nil {
			return fmt.Errorf("runs[%d]: %w", i, err)
		}
		if !r.Contract.Satisfied {
			return fmt.Errorf("%s (%s): contract unsatisfied", r.ID, r.Pass)
		}
		totalEsc += r.Contract.Escalations
		switch r.Pass {
		case "cold":
			coldEsc += r.Contract.Escalations
		case "warm":
			warmEsc += r.Contract.Escalations
			warmHits += r.Contract.PlanCacheHits
		default:
			return fmt.Errorf("%s: unknown pass %q", r.ID, r.Pass)
		}
	}
	if totalEsc == 0 {
		return fmt.Errorf("no run escalated: the suite no longer exercises the escalation path")
	}
	if warmHits == 0 {
		return fmt.Errorf("warm pass had zero plan-cache hits: contract retries are re-planning from scratch")
	}
	if warmEsc > coldEsc {
		return fmt.Errorf("warm escalations (%d) exceed cold (%d): learned corrections regressed", warmEsc, coldEsc)
	}
	fmt.Printf("%s: ok (%d runs, cold escalations %d, warm %d, warm cache hits %d)\n",
		path, len(top.Runs), coldEsc, warmEsc, warmHits)
	return nil
}
