// Command dsgen generates the bundled synthetic datasets and writes
// them as CSV files (one file per table), for inspection or for loading
// into other systems.
//
// Usage:
//
//	dsgen [-schema tpcds|tpch|logs] [-sf 1] [-out ./data]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"quickr/internal/data"
	"quickr/internal/table"
)

func main() {
	schema := flag.String("schema", "tpcds", "which schema to generate: tpcds, tpch or logs")
	sf := flag.Float64("sf", 1, "scale factor")
	out := flag.String("out", "./data", "output directory")
	rows := flag.Int("rows", 100000, "row count for -schema logs")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var tables map[string]*table.Table
	switch *schema {
	case "tpcds":
		cfg := data.DefaultTPCDS()
		cfg.ScaleFactor = *sf
		tables = data.GenerateTPCDS(cfg).Tables
	case "tpch":
		cfg := data.DefaultTPCH()
		cfg.ScaleFactor = *sf
		tables = data.GenerateTPCH(cfg).Tables
	case "logs":
		t := data.Logs(*rows, 777, 8)
		tables = map[string]*table.Table{t.Name: t}
	default:
		fatal(fmt.Errorf("unknown schema %q", *schema))
	}

	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		t := tables[name]
		path := filepath.Join(*out, name+".csv")
		if err := writeCSV(path, t); err != nil {
			fatal(err)
		}
		fmt.Printf("%-20s %8d rows -> %s\n", name, t.NumRows(), path)
	}
}

func writeCSV(path string, t *table.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(t.Schema.Names()); err != nil {
		return err
	}
	rec := make([]string, t.Schema.Len())
	for _, part := range t.Partitions {
		for _, row := range part {
			for i, v := range row {
				rec[i] = v.String()
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsgen:", err)
	os.Exit(1)
}
