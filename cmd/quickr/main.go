// Command quickr runs SQL against the bundled synthetic TPC-DS-like
// warehouse, exactly or approximately, and explains the plans the
// optimizer chooses.
//
// Usage:
//
//	quickr [-sf 1] [-approx] [-explain] [-metrics] 'SELECT ...'
//	quickr [-sf 1] -i            # simple REPL
//
// REPL commands: `exact <sql>`, `approx <sql>`, `explain <sql>`,
// `tables`, `quit`.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"quickr"
	"quickr/internal/data"
)

func main() {
	sf := flag.Float64("sf", 1, "TPC-DS-like scale factor")
	approx := flag.Bool("approx", false, "run through ASALQA (approximate)")
	explain := flag.Bool("explain", false, "print plans instead of executing")
	metrics := flag.Bool("metrics", false, "print simulated cluster metrics")
	interactive := flag.Bool("i", false, "interactive mode")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "loading TPC-DS-like data at sf=%.2g...\n", *sf)
	eng := buildEngine(*sf)

	if *interactive {
		repl(eng, *metrics)
		return
	}
	query := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(query) == "" {
		fmt.Fprintln(os.Stderr, "usage: quickr [-approx] [-explain] 'SELECT ...'")
		os.Exit(2)
	}
	if *explain {
		doExplain(eng, query)
		return
	}
	runQuery(eng, query, *approx, *metrics)
}

func buildEngine(sf float64) *quickr.Engine {
	cfg := data.DefaultTPCDS()
	cfg.ScaleFactor = sf
	ds := data.GenerateTPCDS(cfg)
	eng := quickr.New()
	for name, t := range ds.Tables {
		eng.RegisterStored(t, ds.PKs[name]...)
	}
	return eng
}

func runQuery(eng *quickr.Engine, query string, approx, metrics bool) {
	var res *quickr.Result
	var err error
	if approx {
		res, err = eng.ExecApprox(query)
	} else {
		res, err = eng.Exec(query)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Print(res.Format(50))
	if approx {
		if res.Unapproximable {
			fmt.Println("-- ASALQA declared the query unapproximable; exact plan ran")
		} else {
			fmt.Printf("-- sampled with %v\n", res.Samplers)
		}
	}
	if metrics {
		m := res.Metrics
		fmt.Printf("-- machine-time=%.0f runtime=%.0f passes=%.2f shuffled=%.0fB intermediate=%.0fB tasks=%d\n",
			m.MachineHours, m.Runtime, m.Passes, m.ShuffledBytes, m.IntermediateBytes, m.Tasks)
	}
}

func doExplain(eng *quickr.Engine, query string) {
	for _, mode := range []struct {
		name   string
		approx bool
	}{{"BASELINE", false}, {"QUICKR", true}} {
		info, err := eng.Plan(query, mode.approx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("=== %s plan (optimized in %v) ===\n", mode.name, info.OptimizeTime)
		fmt.Print(info.Physical)
		if mode.approx {
			if info.Unapproximable {
				fmt.Println("-- unapproximable")
			}
			for _, n := range info.Notes {
				fmt.Println("-- note:", n)
			}
			for _, tr := range info.AccuracyTrace {
				fmt.Println("-- accuracy:", tr)
			}
			if info.Sampled {
				fmt.Printf("-- root-equivalent sampler: %s p=%.4g\n", info.RootSampler, info.EffectiveP)
			}
		}
	}
}

func repl(eng *quickr.Engine, metrics bool) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("quickr> commands: exact <sql> | approx <sql> | explain <sql> | tables | quit")
	fmt.Print("quickr> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "quit" || line == "exit":
			return
		case line == "tables":
			names := eng.Catalog().Tables()
			sort.Strings(names)
			for _, n := range names {
				t, _ := eng.Catalog().Table(n)
				fmt.Printf("%-18s %8d rows  %s\n", n, t.NumRows(), t.Schema)
			}
		case strings.HasPrefix(line, "exact "):
			runQuery(eng, line[len("exact "):], false, metrics)
		case strings.HasPrefix(line, "approx "):
			runQuery(eng, line[len("approx "):], true, metrics)
		case strings.HasPrefix(line, "explain "):
			doExplain(eng, line[len("explain "):])
		case line == "":
		default:
			runQuery(eng, line, true, metrics)
		}
		fmt.Print("quickr> ")
	}
}
