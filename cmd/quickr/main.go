// Command quickr runs SQL against the bundled synthetic TPC-DS-like
// warehouse, exactly or approximately, and explains the plans the
// optimizer chooses.
//
// Usage:
//
//	quickr [-sf 1] [-seed 0] [-batch 1024] [-columnar] [-check] [-prune] [-sample-cache N] [-history h.json] [-approx] [-explain] [-analyze] [-metrics] [-stats out.json] 'SELECT ...'
//	quickr [-sf 1] -i            # simple REPL
//	quickr [-sf 1] -serve :8080  # HTTP/JSON query service (see internal/service)
//
// -explain prints plans without executing; -analyze executes and prints
// the EXPLAIN ANALYZE view (actual row counts per operator alongside
// optimizer estimates, sampler pass rates, join sizes); -stats writes a
// machine-readable JSON run report ("-" for stdout).
//
// -cpuprofile/-memprofile write runtime/pprof profiles for the run; the
// -serve mode instead exposes live profiles on /debug/pprof.
//
// REPL commands: `exact <sql>`, `approx <sql>`, `explain <sql>`,
// `analyze <sql>`, `tables`, `quit`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"

	"quickr"
	"quickr/internal/data"
	"quickr/internal/profiling"
	"quickr/internal/service"
)

func main() {
	sf := flag.Float64("sf", 1, "TPC-DS-like scale factor")
	seed := flag.Uint64("seed", 0, "sampler seed (0 = historical default sequence)")
	approx := flag.Bool("approx", false, "run through ASALQA (approximate)")
	explain := flag.Bool("explain", false, "print plans instead of executing")
	analyze := flag.Bool("analyze", false, "execute and print EXPLAIN ANALYZE (actual vs estimated rows)")
	metrics := flag.Bool("metrics", false, "print simulated cluster metrics")
	stats := flag.String("stats", "", "write a JSON run report to this path (\"-\" = stdout)")
	batch := flag.Int("batch", 0, "executor batch size in rows (0 = default, <0 = materialize whole partitions)")
	columnar := flag.Bool("columnar", false, "run streamed pipelines on the vectorized columnar executor (ignored when -batch < 0)")
	check := flag.Bool("check", false, "verify plan invariants (sampler dominance, universe pairing, weight propagation) at optimize time; violations fail the query")
	prune := flag.Bool("prune", false, "enable partition-selection pruning: sampled plans whose partition summaries certify the sampler's columns scan a weighted partition subset")
	sampleCache := flag.Int64("sample-cache", 0, "enable hot-sample reuse with this byte budget: repeated queries replay materialized sampler output instead of re-scanning (0 = off); answers are bit-identical warm or cold")
	history := flag.String("history", "", "load the learned query history from this JSON file before running and save it back after (created if missing)")
	interactive := flag.Bool("i", false, "interactive mode")
	serve := flag.String("serve", "", "serve the HTTP/JSON query API on this address (e.g. :8080) instead of running a query")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit (go tool pprof)")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	fmt.Fprintf(os.Stderr, "loading TPC-DS-like data at sf=%.2g...\n", *sf)
	eng := buildEngine(*sf, *seed)
	eng.SetBatchSize(*batch)
	eng.SetColumnar(*columnar)
	eng.SetPlanChecks(*check)
	eng.SetPrune(*prune)
	eng.SetSampleCache(*sampleCache)
	if *history != "" {
		loadHistory(eng, *history)
		defer saveHistory(eng, *history)
	}

	if *serve != "" {
		srv := service.New(eng)
		fmt.Fprintf(os.Stderr, "serving query API on %s (POST /query, GET /query/{id}, POST /query/{id}/cancel, GET /metrics)\n", *serve)
		if err := http.ListenAndServe(*serve, srv.Handler()); err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		return
	}
	if *interactive {
		repl(eng, *metrics)
		return
	}
	query := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(query) == "" {
		fmt.Fprintln(os.Stderr, "usage: quickr [-approx] [-explain] [-analyze] [-stats out.json] 'SELECT ...'")
		os.Exit(2)
	}
	if *explain {
		doExplain(eng, query)
		return
	}
	if *analyze {
		doAnalyze(eng, query, *approx, *stats)
		return
	}
	runQuery(eng, query, *approx, *metrics, *stats)
}

func buildEngine(sf float64, seed uint64) *quickr.Engine {
	cfg := data.DefaultTPCDS()
	cfg.ScaleFactor = sf
	ds := data.GenerateTPCDS(cfg)
	eng := quickr.New()
	eng.SetSeed(seed)
	for name, t := range ds.Tables {
		eng.RegisterStored(t, ds.PKs[name]...)
	}
	return eng
}

// loadHistory primes the engine's learned query history from path; a
// missing file simply starts cold (corrupt files degrade to cold inside
// LoadHistory).
func loadHistory(eng *quickr.Engine, path string) {
	f, err := os.Open(path)
	if err != nil {
		if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "history:", err)
		}
		return
	}
	defer f.Close()
	if err := eng.LoadHistory(f); err != nil {
		fmt.Fprintln(os.Stderr, "history:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "loaded query history (%d fingerprints) from %s\n", eng.HistoryLen(), path)
}

// saveHistory persists the engine's learned query history to path.
func saveHistory(eng *quickr.Engine, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "history:", err)
		return
	}
	defer f.Close()
	if err := eng.SaveHistory(f); err != nil {
		fmt.Fprintln(os.Stderr, "history:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "saved query history (%d fingerprints) to %s\n", eng.HistoryLen(), path)
}

// printContract reports the contract outcome for contract-bearing
// queries.
func printContract(res *quickr.Result) {
	c := res.Contract
	if c == nil {
		return
	}
	verdict := "satisfied"
	if !c.Satisfied {
		verdict = "MISSED"
	}
	how := fmt.Sprintf("p=%.4g", c.ChosenP)
	if c.Exact {
		how = "exact plan"
	}
	fmt.Printf("-- contract %s via %s: attempts=%d escalations=%d cache-hits=%d history-hit=%v\n",
		verdict, how, c.Attempts, c.Escalations, c.PlanCacheHits, c.HistoryHit)
	if c.RealizedRelErr > 0 {
		fmt.Printf("-- contract error: predicted=%.4g corrected=%.4g realized=%.4g (target %.4g @ %.0f%%)\n",
			c.PredictedRelErr, c.CorrectedRelErr, c.RealizedRelErr, c.ErrorTarget, 100*c.Confidence)
	}
}

func execOnce(eng *quickr.Engine, query string, approx bool) *quickr.Result {
	var res *quickr.Result
	var err error
	if approx {
		res, err = eng.ExecApprox(query)
	} else {
		res, err = eng.Exec(query)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	return res
}

// writeStats emits the JSON run report to path ("-" = stdout).
func writeStats(res *quickr.Result, query string, approx bool, path string) {
	if path == "" {
		return
	}
	b, err := json.MarshalIndent(res.RunReport(query, approx), "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "stats:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if path == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "stats:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote run report to %s\n", path)
}

func runQuery(eng *quickr.Engine, query string, approx, metrics bool, stats string) {
	res := execOnce(eng, query, approx)
	fmt.Print(res.Format(50))
	if approx {
		if res.Unapproximable {
			fmt.Println("-- ASALQA declared the query unapproximable; exact plan ran")
		} else {
			fmt.Printf("-- sampled with %v\n", res.Samplers)
		}
	}
	printContract(res)
	if metrics {
		m := res.Metrics
		fmt.Printf("-- machine-time=%.0f runtime=%.0f passes=%.2f shuffled=%.0fB intermediate=%.0fB tasks=%d\n",
			m.MachineHours, m.Runtime, m.Passes, m.ShuffledBytes, m.IntermediateBytes, m.Tasks)
	}
	writeStats(res, query, approx, stats)
}

// doAnalyze executes the query (baseline and, with -approx, the
// sampled plan) and prints the EXPLAIN ANALYZE annotated plan.
func doAnalyze(eng *quickr.Engine, query string, approx bool, stats string) {
	res := execOnce(eng, query, approx)
	mode := "BASELINE"
	if approx {
		mode = "QUICKR"
	}
	fmt.Printf("=== EXPLAIN ANALYZE (%s) ===\n", mode)
	fmt.Print(res.AnalyzedPlan)
	if approx && res.Unapproximable {
		fmt.Println("-- ASALQA declared the query unapproximable; exact plan ran")
	}
	printContract(res)
	fmt.Print(res.StageReport)
	writeStats(res, query, approx, stats)
}

func doExplain(eng *quickr.Engine, query string) {
	for _, mode := range []struct {
		name   string
		approx bool
	}{{"BASELINE", false}, {"QUICKR", true}} {
		info, err := eng.Plan(query, mode.approx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("=== %s plan (optimized in %v) ===\n", mode.name, info.OptimizeTime)
		fmt.Print(info.Physical)
		if mode.approx {
			if info.Unapproximable {
				fmt.Println("-- unapproximable")
			}
			for _, n := range info.Notes {
				fmt.Println("-- note:", n)
			}
			for _, tr := range info.AccuracyTrace {
				fmt.Println("-- accuracy:", tr)
			}
			if info.Sampled {
				fmt.Printf("-- root-equivalent sampler: %s p=%.4g\n", info.RootSampler, info.EffectiveP)
			}
		}
	}
}

func repl(eng *quickr.Engine, metrics bool) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("quickr> commands: exact <sql> | approx <sql> | explain <sql> | analyze <sql> | tables | quit")
	fmt.Print("quickr> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "quit" || line == "exit":
			return
		case line == "tables":
			names := eng.Catalog().Tables()
			sort.Strings(names)
			for _, n := range names {
				t, _ := eng.Catalog().Table(n)
				fmt.Printf("%-18s %8d rows  %s\n", n, t.NumRows(), t.Schema)
			}
		case strings.HasPrefix(line, "exact "):
			runQuery(eng, line[len("exact "):], false, metrics, "")
		case strings.HasPrefix(line, "approx "):
			runQuery(eng, line[len("approx "):], true, metrics, "")
		case strings.HasPrefix(line, "explain "):
			doExplain(eng, line[len("explain "):])
		case strings.HasPrefix(line, "analyze "):
			doAnalyze(eng, line[len("analyze "):], true, "")
		case line == "":
		default:
			runQuery(eng, line, true, metrics, "")
		}
		fmt.Print("quickr> ")
	}
}
