package quickr_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"quickr"
	"quickr/internal/metrics"
	"quickr/internal/testutil"
)

// newSkewedEngine builds an engine over one table sk(g, v) whose value
// column carries a deterministic heavy spike (v=20 on every 61st row,
// v=1 otherwise). SUM(v*v) over it has a true squared coefficient of
// variation around 45, far above the optimizer's cv²=1 fallback for
// computed aggregate arguments — so cold error contracts over SUM(v*v)
// reliably under-predict and exercise the escalation ladder.
func newSkewedEngine(tb testing.TB, n, groups int) *quickr.Engine {
	tb.Helper()
	eng := quickr.New()
	if err := eng.CreateTable("sk", []quickr.Column{
		{Name: "g", Type: quickr.Int},
		{Name: "v", Type: quickr.Float},
	}, 4); err != nil {
		tb.Fatal(err)
	}
	rows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		v := 1.0
		if i%61 == 0 {
			v = 20.0
		}
		rows = append(rows, []any{i % groups, v})
	}
	if err := eng.Insert("sk", rows); err != nil {
		tb.Fatal(err)
	}
	return eng
}

// escalatorSQL is a contract the cold model predicts satisfiable at a
// mid-ladder rung but whose realized CI misses: the sampled attempts
// escalate and the run ends in the exact fallback.
const escalatorSQL = "SELECT g, SUM(v * v) FROM sk GROUP BY g ERROR WITHIN 6% CONFIDENCE 95%"

// TestContractEscalationCapExactFallback: a contract the sampler cannot
// satisfy walks the ladder at most maxEscalations+1 sampled attempts and
// lands on the exact plan, which satisfies the bound by construction.
func TestContractEscalationCapExactFallback(t *testing.T) {
	eng := newSkewedEngine(t, 40000, 8)
	res, err := eng.ExecApprox(escalatorSQL)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Contract
	if c == nil {
		t.Fatal("contract query must carry ContractInfo")
	}
	if c.Escalations == 0 {
		t.Fatalf("expected the cold model to under-predict and escalate, got %+v", c)
	}
	if !c.Exact || !c.Satisfied {
		t.Fatalf("ladder exhausted: want exact fallback satisfying the bound, got %+v", c)
	}
	if c.ChosenP != 0 {
		t.Fatalf("exact fallback must report ChosenP=0, got %v", c.ChosenP)
	}
	if c.Attempts > quickr.DefaultContractMaxEscalations+2 {
		t.Fatalf("attempts %d exceed the escalation cap bound", c.Attempts)
	}
	if res.Sampled {
		t.Fatal("fallback result must be exact (not sampled)")
	}
}

// TestContractMaxEscalationsZero: with the cap at zero the very first
// miss goes straight to the exact fallback — one sampled attempt, one
// exact attempt.
func TestContractMaxEscalationsZero(t *testing.T) {
	eng := newSkewedEngine(t, 40000, 8)
	eng.SetContractMaxEscalations(0)
	res, err := eng.ExecApprox(escalatorSQL)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Contract
	if c == nil {
		t.Fatal("contract query must carry ContractInfo")
	}
	if c.Attempts != 2 || c.Escalations != 1 || !c.Exact || !c.Satisfied {
		t.Fatalf("cap=0 must mean one sampled miss then exact, got %+v", c)
	}
}

// TestContractLadderMonotone: a tighter error target never picks a
// smaller sampling probability. Uses SUM(v), whose argument has real
// column statistics, so the prediction is faithful and neither run
// escalates.
func TestContractLadderMonotone(t *testing.T) {
	loose := newSkewedEngine(t, 40000, 8)
	resLoose, err := loose.ExecApprox("SELECT g, SUM(v) FROM sk GROUP BY g ERROR WITHIN 20% CONFIDENCE 95%")
	if err != nil {
		t.Fatal(err)
	}
	tight := newSkewedEngine(t, 40000, 8)
	resTight, err := tight.ExecApprox("SELECT g, SUM(v) FROM sk GROUP BY g ERROR WITHIN 9% CONFIDENCE 95%")
	if err != nil {
		t.Fatal(err)
	}
	cl, ct := resLoose.Contract, resTight.Contract
	if cl == nil || ct == nil {
		t.Fatal("both runs must carry ContractInfo")
	}
	if !resLoose.Sampled || !resTight.Sampled {
		t.Fatalf("both contracts should be satisfiable by sampling: loose=%+v tight=%+v", cl, ct)
	}
	if ct.ChosenP < cl.ChosenP {
		t.Fatalf("tighter bound picked smaller p: 9%% -> %v, 20%% -> %v", ct.ChosenP, cl.ChosenP)
	}
	if !cl.Satisfied || !ct.Satisfied {
		t.Fatalf("both contracts must be satisfied: loose=%+v tight=%+v", cl, ct)
	}
}

// TestContractRetriesHitPlanCache: with history learning off the second
// run of an escalating contract walks the identical rung sequence, and
// every attempt — each ladder rung and the exact fallback — must be
// served from the plan cache.
func TestContractRetriesHitPlanCache(t *testing.T) {
	eng := newSkewedEngine(t, 40000, 8)
	eng.SetHistoryLearning(false) // before the cold run: setters purge the cache

	cold, err := eng.ExecApprox(escalatorSQL)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Contract == nil || cold.Contract.Escalations == 0 {
		t.Fatalf("cold run must escalate, got %+v", cold.Contract)
	}

	hitsBefore := metrics.PlanCacheHits.Load()
	warm, err := eng.ExecApprox(escalatorSQL)
	if err != nil {
		t.Fatal(err)
	}
	c := warm.Contract
	if c == nil {
		t.Fatal("contract query must carry ContractInfo")
	}
	if c.Attempts != cold.Contract.Attempts {
		t.Fatalf("history off: warm run must repeat the cold rung walk (%d attempts), got %d",
			cold.Contract.Attempts, c.Attempts)
	}
	if c.PlanCacheHits != c.Attempts {
		t.Fatalf("every retry must be a plan-cache hit: attempts=%d hits=%d", c.Attempts, c.PlanCacheHits)
	}
	if got := metrics.PlanCacheHits.Load() - hitsBefore; got < int64(c.Attempts) {
		t.Fatalf("global cache-hit counter advanced by %d, want >= %d", got, c.Attempts)
	}
}

// TestContractCancellationNoLeaks: cancelling (or expiring) a contract
// run mid-escalation must leak no goroutines and surface the sentinel
// errors.
func TestContractCancellationNoLeaks(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newSkewedEngine(t, 40000, 8)

	// Already-cancelled context: fails before or during the first rung.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.ExecApproxContext(ctx, escalatorSQL); !errors.Is(err, quickr.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}

	// A spread of tiny timeouts lands cancellation at different points
	// in the escalation loop; every outcome must be clean.
	for _, d := range []time.Duration{50 * time.Microsecond, 500 * time.Microsecond, 5 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		res, err := eng.ExecApproxContext(ctx, escalatorSQL)
		cancel()
		switch {
		case err == nil:
			if res.Contract == nil || !res.Contract.Satisfied {
				t.Fatalf("timeout %v: completed run must satisfy, got %+v", d, res.Contract)
			}
		case errors.Is(err, quickr.ErrCanceled) || errors.Is(err, quickr.ErrDeadline):
		default:
			t.Fatalf("timeout %v: got %v, want nil/ErrCanceled/ErrDeadline", d, err)
		}
	}
}

// TestDeadlineContractBudget: WITHIN <duration> contracts never exceed
// the budget by more than one executor batch — an expired deadline is
// honored at the next batch boundary.
func TestDeadlineContractBudget(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newSkewedEngine(t, 120000, 8)
	eng.SetBatchSize(256) // small batches keep the overrun bound tight

	// Generous budget: the query completes well inside it.
	start := time.Now()
	res, err := eng.ExecApprox("SELECT g, SUM(v) FROM sk GROUP BY g WITHIN 10s")
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("run exceeded its 10s budget: %v", el)
	}
	c := res.Contract
	if c == nil || !c.Satisfied || c.Deadline != 10*time.Second {
		t.Fatalf("deadline contract info wrong: %+v", c)
	}
	if c.Attempts != 1 {
		t.Fatalf("deadline contracts are single-attempt, got %d", c.Attempts)
	}

	// Impossibly tight budget: the run must stop at a batch boundary
	// right after expiry, not finish the scan. The slack term absorbs
	// scheduling noise; the point is it is far below full-query time.
	start = time.Now()
	_, err = eng.ExecApprox("SELECT g, SUM(v) FROM sk GROUP BY g WITHIN 1ms")
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, quickr.ErrDeadline) && !errors.Is(err, quickr.ErrCanceled) {
		t.Fatalf("tight deadline: got %v, want nil or ErrDeadline", err)
	}
	if elapsed > 1*time.Second {
		t.Fatalf("1ms deadline run took %v: deadline not honored at batch boundaries", elapsed)
	}
}
