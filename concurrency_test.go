package quickr_test

// The concurrency battery: many mixed exact/approx benchmark queries in
// flight on one Engine — sharing the process-wide worker pool, the
// byte-budget admission gate and the plan cache — must return answers
// bit-identical to serial execution at every batch size, stay clean
// under -race, survive mid-flight cancellation, and leak no goroutines.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"quickr"
	"quickr/internal/data"
	"quickr/internal/testutil"
	"quickr/internal/workload"
)

// newTPCDSEngine loads the TPC-DS-like warehouse at a small scale.
func newTPCDSEngine(tb testing.TB, sf float64) *quickr.Engine {
	tb.Helper()
	cfg := data.DefaultTPCDS()
	cfg.ScaleFactor = sf
	ds := data.GenerateTPCDS(cfg)
	eng := quickr.New()
	for name, t := range ds.Tables {
		eng.RegisterStored(t, ds.PKs[name]...)
	}
	return eng
}

// canonical renders a result's rows as sorted strings, so comparisons
// are insensitive to row order but exact on every value.
func canonical(res *quickr.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, fmt.Sprintf("%v", r))
	}
	sort.Strings(out)
	return out
}

func sameCanonical(tb testing.TB, label string, want, got []string) {
	tb.Helper()
	if len(want) != len(got) {
		tb.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			tb.Fatalf("%s: row %d differs:\n got  %s\n want %s", label, i, got[i], want[i])
		}
	}
}

type hammerCase struct {
	id     string
	sql    string
	approx bool
}

// hammerCases pairs the first workload queries with both execution
// modes.
func hammerCases(n int) []hammerCase {
	qs := workload.TPCDSQueries()
	if n > len(qs) {
		n = len(qs)
	}
	var out []hammerCase
	for _, q := range qs[:n] {
		out = append(out,
			hammerCase{id: q.ID + "/exact", sql: q.SQL, approx: false},
			hammerCase{id: q.ID + "/approx", sql: q.SQL, approx: true},
		)
	}
	return out
}

func execMode(eng *quickr.Engine, ctx context.Context, c hammerCase) (*quickr.Result, error) {
	if c.approx {
		return eng.ExecApproxContext(ctx, c.sql)
	}
	return eng.ExecContext(ctx, c.sql)
}

// TestConcurrentHammerBitIdentical runs 32+ concurrent mixed queries per
// batch-size round on one engine and requires every answer to match its
// serial reference exactly. Under -race this is the concurrency
// acceptance gate.
func TestConcurrentHammerBitIdentical(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newTPCDSEngine(t, 0.05)
	cases := hammerCases(8) // 16 (query, mode) combos

	// Serial references. Results are bit-identical across batch sizes by
	// the pipeline invariant, so one reference per combo suffices.
	refs := make(map[string][]string, len(cases))
	for _, c := range cases {
		res, err := execMode(eng, context.Background(), c)
		if err != nil {
			t.Fatalf("%s serial: %v", c.id, err)
		}
		refs[c.id] = canonical(res)
	}

	batches := []int{7, 256, 0, -1}
	if testing.Short() {
		batches = []int{0}
	}
	for _, batch := range batches {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			eng.SetBatchSize(batch) // bumps the epoch; no queries in flight here
			const workers = 32
			var wg sync.WaitGroup
			var cacheHits int64
			var mu sync.Mutex
			for w := 0; w < workers; w++ {
				c := cases[w%len(cases)]
				wg.Add(1)
				go func(w int, c hammerCase) {
					defer wg.Done()
					res, err := execMode(eng, context.Background(), c)
					if err != nil {
						t.Errorf("worker %d %s: %v", w, c.id, err)
						return
					}
					sameCanonical(t, fmt.Sprintf("worker %d %s", w, c.id), refs[c.id], canonical(res))
					mu.Lock()
					if res.PlanCached {
						cacheHits++
					}
					mu.Unlock()
				}(w, c)
			}
			wg.Wait()
			// 32 workers over 16 combos: the second execution of every
			// combo must hit the plan cache.
			if cacheHits == 0 {
				t.Error("no plan-cache hits across 32 concurrent executions of 16 distinct plans")
			}
		})
	}
}

// TestConcurrentCancelLeavesOthersIntact cancels one long query
// mid-flight and requires: the victim returns ErrCanceled promptly (one
// batch boundary), and concurrently running queries still return answers
// bit-identical to serial.
func TestConcurrentCancelLeavesOthersIntact(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newTPCDSEngine(t, 0.05)
	eng.SetBatchSize(32) // small batches → many cancellation points

	cases := hammerCases(4)
	refs := make(map[string][]string, len(cases))
	for _, c := range cases {
		res, err := execMode(eng, context.Background(), c)
		if err != nil {
			t.Fatalf("%s serial: %v", c.id, err)
		}
		refs[c.id] = canonical(res)
	}

	victimSQL := cases[0].sql
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type victimOutcome struct {
		err   error
		since time.Duration // return latency measured from cancel()
	}
	victimCh := make(chan victimOutcome, 1)
	var canceledAt time.Time
	var onceCancel sync.Once
	doCancel := func() {
		onceCancel.Do(func() {
			canceledAt = time.Now()
			cancel()
		})
	}
	go func() {
		// Keep re-running the victim until a run is caught mid-flight by
		// the cancel (queries at this scale are fast; retry makes the
		// interleave deterministic enough without sleeps).
		for {
			_, err := eng.ExecContext(ctx, victimSQL)
			if err != nil || ctx.Err() != nil {
				victimCh <- victimOutcome{err: err, since: time.Since(canceledAt)}
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		c := cases[w%len(cases)]
		wg.Add(1)
		go func(w int, c hammerCase) {
			defer wg.Done()
			if w == 7 {
				doCancel()
			}
			res, err := execMode(eng, context.Background(), c)
			if err != nil {
				t.Errorf("bystander %d %s: %v", w, c.id, err)
				return
			}
			sameCanonical(t, fmt.Sprintf("bystander %d %s", w, c.id), refs[c.id], canonical(res))
		}(w, c)
	}
	wg.Wait()
	doCancel()

	select {
	case out := <-victimCh:
		if out.err != nil && !errors.Is(out.err, quickr.ErrCanceled) {
			t.Fatalf("victim returned %v, want ErrCanceled (or nil for a run finished pre-cancel)", out.err)
		}
		if out.since > 10*time.Second {
			t.Fatalf("victim took %v after cancel to return", out.since)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("victim never returned after cancel")
	}
}

// TestCancelBeforeExecution: a context canceled before submission stops
// the query at the admission gate with the typed error.
func TestCancelBeforeExecution(t *testing.T) {
	eng := newTPCDSEngine(t, 0.01)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.ExecContext(ctx, workload.TPCDSQueries()[0].SQL)
	if !errors.Is(err, quickr.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

// TestDeadlineMapsToErrDeadline: an already-expired deadline returns the
// deadline-typed error.
func TestDeadlineMapsToErrDeadline(t *testing.T) {
	eng := newTPCDSEngine(t, 0.01)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := eng.ExecContext(ctx, workload.TPCDSQueries()[0].SQL)
	if !errors.Is(err, quickr.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

// TestConcurrentMixedChaos interleaves queries, cancels and repeated
// plans with randomized timing; every outcome must be either a correct
// answer or a typed cancellation — never a wrong answer, panic or leak.
func TestConcurrentMixedChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos hammer skipped in -short")
	}
	testutil.VerifyNoLeaks(t)
	eng := newTPCDSEngine(t, 0.05)
	cases := hammerCases(6)
	refs := make(map[string][]string, len(cases))
	for _, c := range cases {
		res, err := execMode(eng, context.Background(), c)
		if err != nil {
			t.Fatalf("%s serial: %v", c.id, err)
		}
		refs[c.id] = canonical(res)
	}

	const workers = 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for round := 0; round < 6; round++ {
				c := cases[rng.Intn(len(cases))]
				ctx := context.Background()
				cancelSoon := rng.Intn(3) == 0
				var cancel context.CancelFunc
				if cancelSoon {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(2000))*time.Microsecond)
				}
				res, err := execMode(eng, ctx, c)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					sameCanonical(t, fmt.Sprintf("chaos %d/%d %s", w, round, c.id), refs[c.id], canonical(res))
				case errors.Is(err, quickr.ErrCanceled) || errors.Is(err, quickr.ErrDeadline):
					if !cancelSoon {
						t.Errorf("chaos %d/%d %s: spurious cancellation: %v", w, round, c.id, err)
					}
				default:
					t.Errorf("chaos %d/%d %s: %v", w, round, c.id, err)
				}
			}
		}(w)
	}
	wg.Wait()
}
