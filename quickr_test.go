package quickr

import (
	"math"
	"math/rand"
	"testing"
)

// buildSalesEngine creates a small star schema: a fact table with
// skewed keys and a dimension table, enough to exercise exact and
// approximate paths end to end.
func buildSalesEngine(t testing.TB, rows int) *Engine {
	t.Helper()
	eng := New()
	if err := eng.CreateTable("item", []Column{
		{Name: "i_item_sk", Type: Int},
		{Name: "i_color", Type: String},
		{Name: "i_price", Type: Float},
	}, 2); err != nil {
		t.Fatal(err)
	}
	if err := eng.CreateTable("sales", []Column{
		{Name: "s_item_sk", Type: Int},
		{Name: "s_customer_sk", Type: Int},
		{Name: "s_amount", Type: Float},
		{Name: "s_quantity", Type: Int},
	}, 8); err != nil {
		t.Fatal(err)
	}
	eng.SetPrimaryKey("item", "i_item_sk")

	colors := []string{"red", "green", "blue", "black", "white"}
	var items [][]any
	const numItems = 50
	for i := 0; i < numItems; i++ {
		items = append(items, []any{i, colors[i%len(colors)], 1.0 + float64(i%20)})
	}
	if err := eng.Insert("item", items); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	var sales [][]any
	for i := 0; i < rows; i++ {
		item := int(math.Floor(math.Pow(rng.Float64(), 2) * numItems)) // skewed
		cust := rng.Intn(rows / 10)
		sales = append(sales, []any{item, cust, 10 + 5*rng.Float64(), 1 + rng.Intn(5)})
	}
	if err := eng.Insert("sales", sales); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestExecExactGroupBy(t *testing.T) {
	eng := buildSalesEngine(t, 5000)
	res, err := eng.Exec(`
		SELECT i_color, SUM(s_amount) AS total, COUNT(*) AS cnt
		FROM sales JOIN item ON s_item_sk = i_item_sk
		GROUP BY i_color`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 color groups, got %d: %v", len(res.Rows), res.Rows)
	}
	var total float64
	var cnt int64
	for _, row := range res.Rows {
		total += row[1].(float64)
		cnt += row[2].(int64)
	}
	if cnt != 5000 {
		t.Errorf("COUNT(*) sums to %d, want 5000", cnt)
	}
	if total < 5000*10 || total > 5000*15 {
		t.Errorf("SUM out of range: %v", total)
	}
	if res.Metrics.MachineHours <= 0 || res.Metrics.Passes <= 0 {
		t.Errorf("metrics not populated: %+v", res.Metrics)
	}
}

func TestExecApproxMatchesExactShape(t *testing.T) {
	eng := buildSalesEngine(t, 20000)
	q := `
		SELECT i_color, SUM(s_amount) AS total
		FROM sales JOIN item ON s_item_sk = i_item_sk
		GROUP BY i_color`
	exact, err := eng.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := eng.ExecApprox(q)
	if err != nil {
		t.Fatal(err)
	}
	if !approx.Sampled {
		t.Fatalf("expected a sampled plan; plan:\n%s", approx.PlanText)
	}
	if len(approx.Rows) != len(exact.Rows) {
		t.Fatalf("missed groups: exact %d vs approx %d", len(exact.Rows), len(approx.Rows))
	}
	exactByColor := map[string]float64{}
	for _, r := range exact.Rows {
		exactByColor[r[0].(string)] = r[1].(float64)
	}
	for _, r := range approx.Rows {
		want := exactByColor[r[0].(string)]
		got := r[1].(float64)
		if relErr := math.Abs(got-want) / want; relErr > 0.25 {
			t.Errorf("color %v: exact %.1f approx %.1f relerr %.3f", r[0], want, got, relErr)
		}
	}
	if approx.Metrics.MachineHours >= exact.Metrics.MachineHours {
		t.Errorf("approx not cheaper: %.0f vs %.0f machine-time",
			approx.Metrics.MachineHours, exact.Metrics.MachineHours)
	}
}

func TestPlanReportsSamplers(t *testing.T) {
	eng := buildSalesEngine(t, 20000)
	info, err := eng.Plan(`
		SELECT i_color, COUNT(*) AS c
		FROM sales JOIN item ON s_item_sk = i_item_sk
		GROUP BY i_color`, true)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Sampled || len(info.Samplers) == 0 {
		t.Fatalf("expected samplers in plan:\n%s\nnotes: %v", info.Physical, info.Notes)
	}
	if info.OptimizeTime <= 0 {
		t.Error("optimize time not recorded")
	}
}
