package quickr

import (
	"math"
	"strings"
	"testing"
)

func TestEngineErrors(t *testing.T) {
	eng := New()
	if _, err := eng.Exec("SELECT a FROM missing"); err == nil {
		t.Error("unknown table must error")
	}
	if _, err := eng.Exec("NOT SQL"); err == nil {
		t.Error("parse error must surface")
	}
	if err := eng.CreateTable("t", []Column{{Name: "a", Type: ColType(99)}}, 1); err == nil {
		t.Error("bad column type must error")
	}
	if err := eng.Insert("missing", [][]any{{1}}); err == nil {
		t.Error("insert into unknown table must error")
	}
	must(t, eng.CreateTable("t", []Column{{Name: "a", Type: Int}}, 1))
	if err := eng.Insert("t", [][]any{{struct{}{}}}); err == nil {
		t.Error("unsupported Go value must error")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestTable8RewritesEndToEnd(t *testing.T) {
	// Verify every Table-8 estimator on a sampled run against the exact
	// run: COUNT(*), SUM, AVG, SUMIF, COUNTIF and COUNT(DISTINCT).
	eng := buildSalesEngine(t, 40000)
	q := `SELECT i_color,
	        COUNT(*) AS cnt,
	        SUM(s_amount) AS total,
	        AVG(s_amount) AS avg_amt,
	        SUMIF(s_quantity > 2, s_amount) AS big_total,
	        COUNTIF(s_quantity > 2) AS big_cnt
	      FROM sales JOIN item ON s_item_sk = i_item_sk
	      GROUP BY i_color`
	exact, err := eng.Exec(q)
	must(t, err)
	approx, err := eng.ExecApprox(q)
	must(t, err)
	if !approx.Sampled {
		t.Fatalf("plan not sampled:\n%s", approx.PlanText)
	}
	exactBy := map[any][]any{}
	for _, r := range exact.Rows {
		exactBy[r[0]] = r
	}
	for _, r := range approx.Rows {
		e := exactBy[r[0]]
		if e == nil {
			t.Fatalf("extra group %v", r[0])
		}
		for i := 1; i < len(r); i++ {
			ev, gv := toF(e[i]), toF(r[i])
			if ev == 0 {
				continue
			}
			if rel := math.Abs(gv-ev) / math.Abs(ev); rel > 0.30 {
				t.Errorf("group %v col %s: exact %.1f approx %.1f (%.2f rel err)",
					r[0], exact.Columns[i], ev, gv, rel)
			}
		}
	}
}

func toF(v any) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	return 0
}

func TestCIContainsTruthMostly(t *testing.T) {
	eng := buildSalesEngine(t, 40000)
	q := `SELECT i_color, SUM(s_amount) AS total
	      FROM sales JOIN item ON s_item_sk = i_item_sk
	      GROUP BY i_color`
	exact, err := eng.Exec(q)
	must(t, err)
	approx, err := eng.ExecApprox(q)
	must(t, err)
	exactBy := map[string]float64{}
	for _, g := range exact.Estimates {
		exactBy[keyOf(g.Key)] = toF(g.Values[0])
	}
	within := 0
	for _, g := range approx.Estimates {
		truth := exactBy[keyOf(g.Key)]
		est := toF(g.Values[0])
		if math.Abs(est-truth) <= g.CI95[0]*1.5 {
			within++
		}
	}
	// 95% CIs (with slack for estimator approximations) should cover the
	// truth for nearly all of the 5 groups.
	if within < len(approx.Estimates)-1 {
		t.Errorf("only %d/%d groups within CI", within, len(approx.Estimates))
	}
}

func keyOf(vals []any) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(strings.TrimSpace(strings.ReplaceAll(
			strings.ReplaceAll(strings.ToLower(toS(v)), "\n", ""), "\t", "")))
		b.WriteByte('|')
	}
	return b.String()
}

func toS(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}

func TestResultFormat(t *testing.T) {
	eng := buildSalesEngine(t, 2000)
	res, err := eng.Exec("SELECT i_color, COUNT(*) AS c FROM sales JOIN item ON s_item_sk = i_item_sk GROUP BY i_color ORDER BY c DESC")
	must(t, err)
	out := res.Format(2)
	if !strings.Contains(out, "i_color") || !strings.Contains(out, "more rows") {
		t.Errorf("format output:\n%s", out)
	}
	if full := res.Format(0); strings.Contains(full, "more rows") {
		t.Errorf("unlimited format should print everything:\n%s", full)
	}
}

func TestPlanExplainFields(t *testing.T) {
	eng := buildSalesEngine(t, 20000)
	info, err := eng.Plan(`SELECT i_color, SUM(s_amount) FROM sales JOIN item ON s_item_sk = i_item_sk GROUP BY i_color`, true)
	must(t, err)
	if !strings.Contains(info.Physical, "HashAgg") || !strings.Contains(info.Logical, "Aggregate") {
		t.Error("plan text missing expected operators")
	}
	if info.Sampled {
		if info.EffectiveP <= 0 || info.EffectiveP > 0.1 {
			t.Errorf("effective p: %v", info.EffectiveP)
		}
		if info.RootSampler == "" {
			t.Error("root sampler missing")
		}
	}
}

func TestDeterministicApproxRuns(t *testing.T) {
	eng := buildSalesEngine(t, 20000)
	q := "SELECT i_color, COUNT(*) FROM sales JOIN item ON s_item_sk = i_item_sk GROUP BY i_color"
	a, err := eng.ExecApprox(q)
	must(t, err)
	b, err := eng.ExecApprox(q)
	must(t, err)
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("nondeterministic group count")
	}
	for i := range a.Rows {
		if a.Rows[i][1] != b.Rows[i][1] {
			t.Fatalf("row %d differs across runs: %v vs %v", i, a.Rows[i], b.Rows[i])
		}
	}
}
