package quickr

import (
	"fmt"
	"strings"

	"quickr/internal/cluster"
	"quickr/internal/exec"
	"quickr/internal/metrics"
	"quickr/internal/table"
)

// Result is the outcome of executing a query.
type Result struct {
	// Columns are the output column names, in order.
	Columns []string
	// Rows are the output rows as native Go values (int64, float64,
	// string, bool, or nil for SQL NULL).
	Rows [][]any
	// Metrics are the simulated cluster costs of the run.
	Metrics cluster.Metrics
	// Estimates carry per-group values, standard errors and sample
	// support from the top aggregation (populated for sampled plans and
	// exact plans alike; exact plans report zero standard error).
	Estimates []GroupEstimate
	// Sampled reports whether the executed plan contained samplers.
	Sampled bool
	// Unapproximable is set when ExecApprox fell back to the exact plan.
	Unapproximable bool
	// Samplers lists the samplers in the executed plan.
	Samplers []SamplerInfo
	// PlanText is the executed physical plan, for EXPLAIN-style output.
	PlanText string
	// AnalyzedPlan is the EXPLAIN ANALYZE view: the executed plan
	// annotated with actual row counts per operator alongside the
	// optimizer's estimates, sampler pass rates and join sizes.
	AnalyzedPlan string
	// Stats carries the per-operator execution counters backing
	// AnalyzedPlan and the --stats JSON run report.
	Stats *metrics.Query
	// StageReport is the per-stage accounting of the simulated run.
	StageReport string
	// OptimizeTime is the time spent in query optimization.
	OptimizeTime float64 // seconds
	// PeakInFlightBytes is the worst per-operator in-flight footprint of
	// the run (see exec.Result.PeakInFlightBytes): with streaming
	// pipelines this stays near partitions×batch-bytes where the
	// materializing executor held entire intermediates.
	PeakInFlightBytes float64
	// RowsProcessed counts base-table rows driven through the plan.
	RowsProcessed int64
	// PartitionsScanned and PartitionsPruned count base-table partitions
	// read and skipped by the optimizer's partition-selection pass
	// (PartitionsPruned is 0 unless the engine ran with SetPrune(true)
	// and the plan was pruning-eligible).
	PartitionsScanned int64
	PartitionsPruned  int64
	// ExecSeconds is real wall-clock execution time (not simulated).
	ExecSeconds float64
	// QueuedSeconds is the time the query waited at the byte-budget
	// admission gate before executing.
	QueuedSeconds float64
	// AdmittedBytes is the in-flight byte reservation the admission
	// gate granted the query (estimated from optimizer cardinalities).
	AdmittedBytes int64
	// PoolWaitSeconds is the run's aggregate scheduling wait on the
	// process-wide shared worker pool.
	PoolWaitSeconds float64
	// PoolTasks and PoolStolen count partition tasks run for the query
	// and how many were executed by shared pool workers rather than the
	// query's own goroutine.
	PoolTasks, PoolStolen int
	// PlanCached reports whether the prepared plan came from the
	// engine's plan cache rather than a fresh optimization.
	PlanCached bool
	// Contract describes the outcome of the query's accuracy/latency
	// contract (nil for queries without a contract clause).
	Contract *ContractInfo
	// InternalRows exposes the raw rows for in-module tooling.
	InternalRows []table.Row
}

// GroupEstimate is the public view of one aggregated group.
type GroupEstimate struct {
	// Key holds the group-by values.
	Key []any
	// Values holds the aggregate estimates.
	Values []any
	// StdErr holds the standard error of each aggregate's HT estimator
	// (0 for exact runs and for MIN/MAX/COUNT DISTINCT).
	StdErr []float64
	// CI95 is the half-width of the 95% confidence interval per
	// aggregate (1.96 × StdErr).
	CI95 []float64
	// SampleRows is the number of sample rows supporting the group.
	SampleRows int64
}

func newResult(r *exec.Result, p *prepared) *Result {
	out := &Result{
		Metrics:        r.Metrics,
		Sampled:        p.sampled,
		Unapproximable: p.unapproximable,
		Samplers:       p.samplers,
		PlanText:       r.PlanText,
		AnalyzedPlan:   r.AnalyzedPlan,
		Stats:          r.Stats,
		StageReport:    r.StageReport,
		OptimizeTime:   p.optTime.Seconds(),
		InternalRows:   r.Rows,

		PeakInFlightBytes: r.PeakInFlightBytes,
		RowsProcessed:     r.RowsProcessed,
		PartitionsScanned: r.PartitionsScanned,
		PartitionsPruned:  r.PartitionsPruned,
		ExecSeconds:       r.ExecSeconds,
		QueuedSeconds:     float64(r.QueuedNanos) / 1e9,
		AdmittedBytes:     r.AdmittedBytes,
		PoolWaitSeconds:   float64(r.PoolWaitNanos) / 1e9,
		PoolTasks:         r.PoolTasks,
		PoolStolen:        r.PoolStolen,
	}
	for _, c := range r.Cols {
		out.Columns = append(out.Columns, c.Name)
	}
	for _, row := range r.Rows {
		out.Rows = append(out.Rows, rowToAny(row))
	}
	for _, g := range r.Estimates {
		ge := GroupEstimate{
			Key:        valsToAny(g.Key),
			Values:     valsToAny(g.Values),
			StdErr:     g.StdErr,
			SampleRows: g.SampleRows,
		}
		ge.CI95 = make([]float64, len(g.StdErr))
		for i, se := range g.StdErr {
			ge.CI95[i] = 1.96 * se
		}
		out.Estimates = append(out.Estimates, ge)
	}
	return out
}

func rowToAny(r table.Row) []any {
	return valsToAny(r)
}

func valsToAny(vals []table.Value) []any {
	out := make([]any, len(vals))
	for i, v := range vals {
		switch v.Kind() {
		case table.KindNull:
			out[i] = nil
		case table.KindInt:
			out[i] = v.Int()
		case table.KindFloat:
			out[i] = v.Float()
		case table.KindString:
			out[i] = v.Str()
		case table.KindBool:
			out[i] = v.Bool()
		}
	}
	return out
}

// Format renders the result as an aligned text table (up to max rows;
// max<=0 means all).
func (r *Result) Format(max int) string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns, "\t"))
	b.WriteByte('\n')
	n := len(r.Rows)
	if max > 0 && n > max {
		n = max
	}
	for _, row := range r.Rows[:n] {
		parts := make([]string, len(row))
		for i, v := range row {
			if v == nil {
				parts[i] = "NULL"
			} else if f, ok := v.(float64); ok {
				parts[i] = fmt.Sprintf("%.4g", f)
			} else {
				parts[i] = fmt.Sprint(v)
			}
		}
		b.WriteString(strings.Join(parts, "\t"))
		b.WriteByte('\n')
	}
	if n < len(r.Rows) {
		fmt.Fprintf(&b, "... (%d more rows)\n", len(r.Rows)-n)
	}
	return b.String()
}
