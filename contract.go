package quickr

import (
	"context"
	"io"
	"math"
	"time"

	"quickr/internal/accuracy"
	"quickr/internal/catalog"
	"quickr/internal/metrics"
	"quickr/internal/opt"
	"quickr/internal/sql"
	"quickr/internal/stats"
)

// DefaultContractMaxEscalations bounds error-contract retries: a miss
// escalates p one ladder rung at a time, and after this many
// escalations the engine falls back to the exact plan (which satisfies
// any error bound by construction).
const DefaultContractMaxEscalations = 3

// minContractSupport is the smallest per-group sample support whose
// realized CI participates in the contract check; below it the normal
// approximation behind the CI is meaningless and the group is treated
// as "too small to certify" rather than as a violation.
const minContractSupport = 10

// ContractInfo reports how the engine met (or failed) a query's
// accuracy/latency contract.
type ContractInfo struct {
	// ErrorTarget is the contract's maximum relative error as a
	// fraction (0 when the query had only a deadline clause).
	ErrorTarget float64
	// Confidence is the contract's confidence level as a fraction.
	Confidence float64
	// Deadline is the latency budget (0 when absent).
	Deadline time.Duration
	// ChosenP is the sampling probability of the final attempt (0 for
	// exact plans).
	ChosenP float64
	// Attempts counts plan executions, including the final one.
	Attempts int
	// Escalations counts contract misses that moved p up the ladder.
	Escalations int
	// PlanCacheHits counts attempts served from the plan cache.
	PlanCacheHits int
	// Satisfied reports whether the final answer meets the contract.
	Satisfied bool
	// Exact reports whether the final answer came from an exact plan
	// (planned directly, or the escalation fallback).
	Exact bool
	// HistoryHit reports whether learned corrections for this plan
	// fingerprint informed p selection.
	HistoryHit bool
	// PredictedRelErr is the cold model's predicted relative CI at the
	// final p; CorrectedRelErr is the same after the learned
	// realized/predicted correction; RealizedRelErr is the worst
	// realized relative CI across reported groups.
	PredictedRelErr float64
	CorrectedRelErr float64
	RealizedRelErr  float64
}

// runContract executes a statement carrying a contract clause.
// Error contracts pick the smallest ladder rung predicted (with learned
// corrections) to meet the bound, verify the realized per-group CIs
// after execution, and escalate on a miss; deadline contracts pick the
// largest rung predicted to fit the budget and bound the run with a
// context deadline.
func (e *Engine) runContract(ctx context.Context, stmt *sql.SelectStmt, approx bool) (*Result, error) {
	c := stmt.Contract
	info := &ContractInfo{
		ErrorTarget: c.ErrPct / 100,
		Confidence:  c.ConfPct / 100,
		Deadline:    c.Deadline,
	}
	if info.Confidence <= 0 {
		info.Confidence = 0.95
	}
	e.mu.RLock()
	maxEsc, historyOn := e.contractMaxEsc, e.historyOn
	e.mu.RUnlock()

	if c.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Deadline)
		defer cancel()
	}

	// Learned state for this fingerprint: the realized/predicted CI
	// ratio corrects the error model, the processing rate feeds the
	// deadline model, and the last good p warm-starts the ladder.
	fp := planFingerprint(stmt, approx)
	corr, rowsPerSec := 1.0, 0.0
	minIdx := 0
	if historyOn {
		if qh, ok := e.history.Lookup(fp); ok {
			info.HistoryHit = true
			if qh.CIRatio > 0 {
				corr = qh.CIRatio
			}
			rowsPerSec = qh.RowsPerSec
			for minIdx < len(opt.ContractLadder) && opt.ContractLadder[minIdx] < qh.LastGoodP {
				minIdx++
			}
			if minIdx >= len(opt.ContractLadder) {
				minIdx = len(opt.ContractLadder) - 1
			}
		}
	}

	// Exact mode satisfies any error bound by construction; only the
	// deadline (already armed on ctx) can fail it.
	if !approx {
		res, err := e.runStmt(ctx, stmt, false, 0)
		if err != nil {
			return nil, err
		}
		info.Exact, info.Satisfied, info.Attempts = true, true, 1
		if res.PlanCached {
			info.PlanCacheHits++
		}
		res.Contract = info
		return res, nil
	}

	facts, haveFacts := e.contractFacts(stmt)

	// Deadline-only contracts: one attempt at the largest rung
	// predicted to fit the budget.
	if info.ErrorTarget <= 0 {
		rung := opt.ContractLadder[len(opt.ContractLadder)-1]
		if haveFacts && c.Deadline > 0 {
			rung, _ = opt.ChooseDeadlineP(facts, c.Deadline, rowsPerSec)
		}
		res, err := e.runStmt(ctx, stmt, true, rung)
		if err != nil {
			return nil, err
		}
		info.Attempts = 1
		info.Satisfied = true
		info.Exact = !res.Sampled
		if res.Sampled {
			info.ChosenP = rung
		}
		if res.PlanCached {
			info.PlanCacheHits++
		}
		res.Contract = info
		return res, nil
	}

	z := info.Confidence

	// No aggregate (or no qualifying rung): plan exact from the start.
	idx := -1
	if haveFacts {
		if _, i, ok := opt.ChooseContractP(facts, info.ErrorTarget, z, corr, minIdx); ok {
			idx = i
		}
	}

	for esc := 0; idx >= 0; {
		rung := opt.ContractLadder[idx]
		res, err := e.runStmt(ctx, stmt, true, rung)
		if err != nil {
			return nil, err
		}
		info.Attempts++
		if res.PlanCached {
			info.PlanCacheHits++
		}
		if !res.Sampled {
			// ASALQA degraded to the exact plan at this rung; exact
			// answers satisfy trivially.
			info.Exact, info.Satisfied = true, true
			info.ChosenP = 0
			res.Contract = info
			return res, nil
		}
		realized, measurable := worstRelCI(res.Estimates, z)
		predicted := opt.PredictedRelErr(facts, z, rung, 1)
		info.ChosenP = rung
		info.PredictedRelErr = predicted
		info.CorrectedRelErr = opt.PredictedRelErr(facts, z, rung, corr)
		info.RealizedRelErr = realized

		if historyOn && measurable && predicted > 0 {
			obs := stats.Observation{CIRatio: realized / predicted}
			if realized <= info.ErrorTarget {
				obs.GoodP = rung
			}
			e.history.Record(fp, obs)
		}

		if !measurable || realized <= info.ErrorTarget {
			info.Satisfied = true
			res.Contract = info
			return res, nil
		}

		// Miss: escalate one rung, bounded by the cap and ladder end.
		esc++
		metrics.ContractEscalations.Add(1)
		info.Escalations = esc
		if esc > maxEsc || idx+1 >= len(opt.ContractLadder) {
			break
		}
		idx++
	}

	// Exact fallback: the bound holds by construction.
	res, err := e.runStmt(ctx, stmt, false, 0)
	if err != nil {
		return nil, err
	}
	info.Attempts++
	if res.PlanCached {
		info.PlanCacheHits++
	}
	info.Exact, info.Satisfied = true, true
	info.ChosenP = 0
	info.RealizedRelErr = 0
	res.Contract = info
	return res, nil
}

// contractFacts binds and normalizes the statement just far enough to
// derive the cardinality facts contract p selection needs. Bind errors
// surface later through the normal prepare path; here they simply mean
// "no facts", which degrades to the exact plan.
func (e *Engine) contractFacts(stmt *sql.SelectStmt) (opt.ContractFacts, bool) {
	binder := catalog.NewBinder(e.cat)
	logical, err := binder.Bind(stmt)
	if err != nil {
		return opt.ContractFacts{}, false
	}
	est := opt.NewEstimator(e.cat)
	logical = opt.Normalize(logical, est)
	return opt.ContractFactsFor(est, logical)
}

// worstRelCI returns the largest realized relative CI half-width across
// all groups with enough sample support and a non-zero estimate, at the
// contract's confidence level. measurable=false means no group could be
// checked (tiny supports or all-zero estimates) — treated as satisfied,
// matching the estimator's own "too little data to certify" stance.
func worstRelCI(ests []GroupEstimate, confidence float64) (rel float64, measurable bool) {
	zq := accuracy.ZScore(confidence)
	for _, g := range ests {
		if g.SampleRows < minContractSupport {
			continue
		}
		for i, se := range g.StdErr {
			if se <= 0 || i >= len(g.Values) {
				continue
			}
			v, ok := asFloat(g.Values[i])
			if !ok || v == 0 {
				continue
			}
			measurable = true
			if r := zq * se / math.Abs(v); r > rel {
				rel = r
			}
		}
	}
	return rel, measurable
}

func asFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	}
	return 0, false
}

// SaveHistory serializes the engine's query-history store (the learned
// estimate corrections) as JSON, mirroring SaveStats.
func (e *Engine) SaveHistory(w io.Writer) error { return e.history.Save(w) }

// LoadHistory replaces the query-history store from SaveHistory output.
// Corrupted or truncated payloads degrade to cold estimates (nil
// error). No epoch bump: corrections are applied at run time, never
// baked into cached plans.
func (e *Engine) LoadHistory(r io.Reader) error { return e.history.Load(r) }

// ResetHistory drops all learned corrections (back to cold estimates).
func (e *Engine) ResetHistory() { e.history.Reset() }

// HistoryLen reports how many plan fingerprints have recorded history.
func (e *Engine) HistoryLen() int { return e.history.Len() }
