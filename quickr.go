// Package quickr is a Go implementation of Quickr (Kandula et al.,
// SIGMOD 2016): a big-data query engine that lazily approximates
// complex ad-hoc queries by injecting samplers into the query plan at
// optimization time, with no pre-existing samples required.
//
// The engine parses a large SQL subset, optimizes it with a cost-based
// optimizer in which samplers are first-class operators (the ASALQA
// algorithm), and executes the plan on an in-memory partitioned runtime
// that also simulates cluster costs, so every run reports machine-hours,
// runtime, intermediate data, shuffled data and effective passes over
// the data alongside the (real) answer.
//
// Basic usage:
//
//	eng := quickr.New()
//	eng.CreateTable("sales", []quickr.Column{
//	    {Name: "item", Type: quickr.Int},
//	    {Name: "amount", Type: quickr.Float},
//	}, 4)
//	eng.Insert("sales", rows)
//	exact, _ := eng.Exec("SELECT item, SUM(amount) FROM sales GROUP BY item")
//	approx, _ := eng.ExecApprox("SELECT item, SUM(amount) FROM sales GROUP BY item")
package quickr

import (
	"context"
	"fmt"
	"sync"
	"time"

	"quickr/internal/accuracy"
	"quickr/internal/catalog"
	"quickr/internal/cluster"
	"quickr/internal/core"
	"quickr/internal/exec"
	"quickr/internal/lplan"
	"quickr/internal/metrics"
	"quickr/internal/opt"
	"quickr/internal/plancheck"
	"quickr/internal/pool"
	"quickr/internal/sql"
	"quickr/internal/stats"
	"quickr/internal/table"
)

// Typed errors a context-interrupted query returns (re-exported from
// the executor so callers need not import internal packages).
var (
	// ErrCanceled is returned when the query's context was canceled;
	// cancellation takes effect within one executor batch boundary.
	ErrCanceled = exec.ErrCanceled
	// ErrDeadline is returned when the query's context deadline passed.
	ErrDeadline = exec.ErrDeadline
)

// DefaultMemoryBudget is the admission gate's default byte budget: the
// total estimated in-flight bytes of concurrently executing queries is
// kept below this, and over-budget queries queue (FIFO) instead of
// running immediately.
const DefaultMemoryBudget int64 = 256 << 20

// ColType is a column type for CreateTable.
type ColType int

// Column types.
const (
	Int ColType = iota
	Float
	String
	Bool
)

// Column defines one table column.
type Column struct {
	Name string
	Type ColType
}

// Engine is a Quickr database instance.
//
// An Engine is safe for concurrent query execution: any number of
// goroutines may call Exec/ExecApprox (and their Context variants)
// simultaneously — they share the process-wide worker pool, the
// byte-budget admission gate, and the engine's prepared-plan cache.
// Data definition and settings calls (CreateTable, Insert, Set*) are
// not synchronized against in-flight queries; perform them before
// serving traffic or between quiesced periods, as a production DDL
// path would.
type Engine struct {
	cat *catalog.Catalog

	// mu guards the engine's configuration snapshot and epoch.
	mu         sync.RWMutex
	cfg        cluster.Config
	opts       core.Options
	seed       uint64
	batchSize  int
	columnar   bool
	planChecks bool
	prune      bool
	// epoch versions everything a prepared plan depends on: it bumps on
	// DDL, data loads and every Set* call, invalidating the plan cache.
	epoch uint64
	// historyOn enables the learned estimate-correction loop (query
	// history feeding p selection and EXPLAIN ANALYZE `corrected=`).
	// guarded-by: mu
	historyOn bool
	// contractMaxEsc bounds contract escalation retries before the
	// exact fallback.
	// guarded-by: mu
	contractMaxEsc int
	// sampleCache holds materialized sampler outputs for hot-sample
	// reuse; nil when disabled (the default). The cache itself is
	// internally synchronized — mu only guards the pointer swap.
	// guarded-by: mu
	sampleCache *exec.SampleCache

	cache *planCache
	gate  *pool.Gate
	// history is the per-engine query-history store; it is internally
	// synchronized and is deliberately NOT epoch-versioned — learned
	// corrections survive settings changes (they describe the data and
	// plan shape, not the engine configuration).
	history *stats.History
}

// New creates an engine with default cluster-simulation and ASALQA
// parameters.
func New() *Engine {
	return &Engine{
		cat:            catalog.New(),
		cfg:            cluster.DefaultConfig(),
		opts:           core.DefaultOptions(),
		cache:          newPlanCache(),
		gate:           pool.NewGate(DefaultMemoryBudget),
		history:        stats.NewHistory(),
		historyOn:      true,
		contractMaxEsc: DefaultContractMaxEscalations,
	}
}

// bump invalidates cached plans after a DDL or settings change. The
// sample cache purges too: its runtime keys fold the epoch in, so stale
// entries could never be served — the purge just frees their memory
// promptly instead of waiting for LRU pressure.
// caller-holds: e.mu
func (e *Engine) bump() {
	e.epoch++
	e.cache.purge()
	if e.sampleCache != nil {
		e.sampleCache.Purge()
	}
}

// SetClusterConfig overrides the cluster simulator configuration.
func (e *Engine) SetClusterConfig(cfg cluster.Config) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg = cfg
	e.bump()
}

// SetSeed re-seeds the engine's sampler randomness. Every run is
// deterministic for a given seed; the default seed 0 reproduces the
// historical per-plan sampler seed sequence.
func (e *Engine) SetSeed(seed uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seed = seed
	e.bump()
}

// SetOptions overrides the ASALQA parameters.
func (e *Engine) SetOptions(o core.Options) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.opts = o
	e.bump()
}

// SetBatchSize sets the executor's streaming batch size: the number of
// rows each fused scan→filter→project→sample pipeline hands downstream
// at a time. 0 selects the default (exec.DefaultBatchSize); a negative
// value disables streaming and materializes whole partitions between
// operators (the pre-pipeline behavior, kept as a benchmark baseline).
// Results are bit-identical across batch sizes.
func (e *Engine) SetBatchSize(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.batchSize = n
	e.bump()
}

// BatchSize returns the configured executor batch size.
func (e *Engine) BatchSize() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.batchSize
}

// WarmColumnar eagerly builds the columnar form of every registered
// table's partitions, so columnar benchmark runs measure kernel time
// rather than first-touch columnarization.
func (e *Engine) WarmColumnar() {
	for _, name := range e.cat.Tables() {
		if t, err := e.cat.Table(name); err == nil {
			t.EnsureColumnar()
		}
	}
}

// SetColumnar toggles the vectorized columnar executor for streamed
// pipelines. It has no effect while streaming is disabled (a negative
// batch size keeps the row-materializing oracle path regardless).
// Results are bit-identical across modes.
func (e *Engine) SetColumnar(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.columnar = on
	e.bump()
}

// SetMemoryBudget replaces the admission gate with one holding the
// given byte budget (values < 1 select an effectively unlimited
// budget). Call it while no queries are in flight: admissions already
// granted by the old gate release against the old gate.
func (e *Engine) SetMemoryBudget(bytes int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gate = pool.NewGate(bytes)
	e.bump()
}

// Options returns the current ASALQA parameters.
func (e *Engine) Options() core.Options {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.opts
}

// MemoryBudget returns the admission gate's configured byte budget.
func (e *Engine) MemoryBudget() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.gate.Budget()
}

// SetPlanChecks toggles the plan-invariant verifier
// (internal/plancheck): when enabled, every optimized logical plan and
// every compiled physical plan is checked against the paper's sampler
// invariants (dominance, C1/C2 support, universe pairing, weight
// propagation) and the executor's exchange/breaker discipline before
// execution; a violation fails the query instead of silently returning
// a biased answer. The CLI flag `quickr -check` enables the same
// verifier.
func (e *Engine) SetPlanChecks(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.planChecks = on
	e.bump()
}

// SetPrune toggles the optimizer's partition-selection pass: when
// enabled, sampled plans whose partition summaries fully certify the
// sampler's column needs scan only a weighted subset of partitions
// (heavy-hitter partitions kept outright, the tail subsampled with
// Horvitz–Thompson inflation) and the reported confidence intervals
// widen by the partition-level cluster variance. Off by default;
// while off, plans and results are bit-identical to an engine without
// the pass. The CLI flag `quickr -prune` enables the same pass.
func (e *Engine) SetPrune(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.prune = on
	e.bump()
}

// SetHistoryLearning toggles the learned estimate-correction loop:
// when on (the default), every run records its actuals into the
// query-history store and later runs of the same plan fingerprint blend
// the learned corrections into contract p selection and EXPLAIN ANALYZE
// (`corrected=`). Turning it off freezes the store (existing entries
// are kept but neither consulted nor updated).
func (e *Engine) SetHistoryLearning(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.historyOn = on
	e.bump()
}

// SetContractMaxEscalations bounds how many times a missed error
// contract escalates p along the ladder before falling back to the
// exact plan (values < 0 select the default).
func (e *Engine) SetContractMaxEscalations(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n < 0 {
		n = DefaultContractMaxEscalations
	}
	e.contractMaxEsc = n
	e.bump()
}

// SetSampleCache enables hot-sample reuse with the given byte budget:
// the optimizer wraps each cacheable sampler fragment (a real sampler
// over filters/projects over one base-table scan) in a cached-sample
// node, and the executor materializes the fragment's weighted output
// (column-major) on first execution and replays it on repeats, skipping
// the base-table scan entirely. Cached rows carry the exact per-row
// Horvitz–Thompson weights the lazy path would produce, so answers and
// confidence intervals are bit-identical warm or cold. Entries are
// keyed by fragment fingerprint, table version and config epoch —
// Appends and Set* calls strand stale entries rather than serving them
// — and evicted LRU under the byte budget. A budget < 1 disables the
// cache (the default). The CLI flag `quickr -sample-cache` sets the
// same budget.
func (e *Engine) SetSampleCache(bytes int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if bytes < 1 {
		e.sampleCache = nil
	} else {
		e.sampleCache = exec.NewSampleCache(bytes)
	}
	e.bump()
}

// SampleCacheBudget returns the sample cache's byte budget, 0 when the
// cache is disabled.
func (e *Engine) SampleCacheBudget() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.sampleCache == nil {
		return 0
	}
	return e.sampleCache.Budget()
}

// SetPlanCacheCap re-bounds the prepared-plan cache (default 128
// plans), evicting least-recently-used entries down to the new cap.
// Dashboard-style workloads with more distinct panels than the default
// cap would otherwise thrash re-optimization. Values < 1 restore the
// default.
func (e *Engine) SetPlanCacheCap(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache.setCap(n)
	e.bump()
}

// CreateTable registers an empty table with the given columns, split
// into parts partitions.
func (e *Engine) CreateTable(name string, cols []Column, parts int) error {
	sc := &table.Schema{}
	for _, c := range cols {
		var k table.Kind
		switch c.Type {
		case Int:
			k = table.KindInt
		case Float:
			k = table.KindFloat
		case String:
			k = table.KindString
		case Bool:
			k = table.KindBool
		default:
			return fmt.Errorf("quickr: unknown column type %d", c.Type)
		}
		sc.Cols = append(sc.Cols, table.Column{Name: c.Name, Kind: k})
	}
	e.cat.Register(table.New(name, sc, parts))
	e.mu.Lock()
	e.bump()
	e.mu.Unlock()
	return nil
}

// Insert appends rows (of Go values: int/int64, float64, string, bool,
// nil) to a table, spreading them round-robin over partitions.
func (e *Engine) Insert(name string, rows [][]any) error {
	t, err := e.cat.Table(name)
	if err != nil {
		return err
	}
	for i, r := range rows {
		row := make(table.Row, len(r))
		for j, v := range r {
			val, err := toValue(v)
			if err != nil {
				return fmt.Errorf("quickr: row %d col %d: %w", i, j, err)
			}
			row[j] = val
		}
		t.Append(i, row)
	}
	// Loads change the cardinalities cached plans were costed with.
	e.mu.Lock()
	e.bump()
	e.mu.Unlock()
	return nil
}

func toValue(v any) (table.Value, error) {
	switch x := v.(type) {
	case nil:
		return table.Null, nil
	case int:
		return table.NewInt(int64(x)), nil
	case int64:
		return table.NewInt(x), nil
	case float64:
		return table.NewFloat(x), nil
	case string:
		return table.NewString(x), nil
	case bool:
		return table.NewBool(x), nil
	case table.Value:
		return x, nil
	}
	return table.Value{}, fmt.Errorf("unsupported value type %T", v)
}

// SetPrimaryKey declares a table's primary key (used to recognize
// foreign-key joins with dimension tables).
func (e *Engine) SetPrimaryKey(tableName string, cols ...string) {
	e.cat.SetPrimaryKey(tableName, cols...)
	e.mu.Lock()
	e.bump()
	e.mu.Unlock()
}

// RegisterStored registers a pre-built internal table (used by the
// bundled data generators and benchmarks).
func (e *Engine) RegisterStored(t *table.Table, pk ...string) {
	e.cat.Register(t)
	if len(pk) > 0 {
		e.cat.SetPrimaryKey(t.Name, pk...)
	}
	e.mu.Lock()
	e.bump()
	e.mu.Unlock()
}

// Catalog exposes the underlying catalog (for the bundled experiment
// harness).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Exec runs the query exactly (the Baseline plan: same optimizer, no
// samplers).
func (e *Engine) Exec(query string) (*Result, error) {
	return e.run(context.Background(), query, false)
}

// ExecApprox runs the query through ASALQA: if an accuracy-feasible
// sampled plan is cheaper, it executes with samplers and the result
// carries per-group estimates and standard errors; otherwise the exact
// plan runs and Result.Unapproximable is set.
func (e *Engine) ExecApprox(query string) (*Result, error) {
	return e.run(context.Background(), query, true)
}

// ExecContext is Exec honoring a context: the query stops at the next
// executor batch boundary once ctx is canceled or its deadline passes,
// returning ErrCanceled or ErrDeadline. The context also bounds time
// spent queued at the admission gate.
func (e *Engine) ExecContext(ctx context.Context, query string) (*Result, error) {
	return e.run(ctx, query, false)
}

// ExecApproxContext is ExecApprox honoring a context (see ExecContext).
func (e *Engine) ExecApproxContext(ctx context.Context, query string) (*Result, error) {
	return e.run(ctx, query, true)
}

func (e *Engine) run(ctx context.Context, query string, approx bool) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	if stmt.Contract != nil {
		return e.runContract(ctx, stmt, approx)
	}
	return e.runStmt(ctx, stmt, approx, 0)
}

// runStmt executes one parsed statement at one configuration point.
// minP > 0 forces a contract ladder rung (a floor on every sampler's
// probability); 0 leaves ASALQA's own choice. Every successful run
// feeds its actuals into the query-history store, and runs whose
// fingerprint already has history get corrected cardinality estimates
// in EXPLAIN ANALYZE.
func (e *Engine) runStmt(ctx context.Context, stmt *sql.SelectStmt, approx bool, minP float64) (*Result, error) {
	prep, cached, err := e.prepareCachedStmt(stmt, approx, minP)
	if err != nil {
		return nil, err
	}

	// Snapshot the execution configuration and gate once, so a
	// concurrent Set* call cannot tear this run's view. The epoch rides
	// along for the sample cache's runtime keys: a bump between this
	// snapshot and execution strands the run's cache entries under the
	// old epoch rather than ever serving them stale.
	e.mu.RLock()
	cfg, batch, columnar, gate, historyOn := e.cfg, e.batchSize, e.columnar, e.gate, e.historyOn
	sc, cacheEpoch := e.sampleCache, e.epoch
	e.mu.RUnlock()

	// Learned corrections: when this plan fingerprint has history, show
	// the corrected cardinalities next to the optimizer's estimates.
	fp := planFingerprint(stmt, approx)
	var corr map[exec.PNode]float64
	if historyOn {
		if qh, ok := e.history.Lookup(fp); ok {
			metrics.HistoryHits.Add(1)
			corr = correctedRows(prep, qh)
		}
	}

	// Admission control: reserve the plan's estimated in-flight bytes,
	// queueing (FIFO) while concurrent queries hold the budget.
	metrics.ActiveQueries.Add(1)
	defer metrics.ActiveQueries.Add(-1)
	adm, err := gate.Acquire(ctx, exec.EstimateAdmissionBytes(prep.physical, prep.ests))
	if err != nil {
		return nil, exec.MapCtxErr(err)
	}
	defer gate.Release(adm)

	res, err := exec.RunWithOptions(ctx, prep.physical, cfg, prep.ests, exec.Options{
		BatchSize:     batch,
		Columnar:      columnar,
		QueuedNanos:   adm.QueuedNanos,
		AdmittedBytes: adm.Bytes,
		CorrRows:      corr,
		SampleCache:   sc,
		CacheEpoch:    cacheEpoch,
	})
	if err != nil {
		return nil, err
	}
	if historyOn {
		e.recordHistory(fp, prep, res)
	}
	out := newResult(res, prep)
	out.PlanCached = cached
	return out, nil
}

// prepareCachedStmt returns the cached prepared plan for the normalized
// statement at (mode, epoch, minP) — optimizing and caching on miss.
// The contract clause is part of the normalized text, so contract and
// non-contract renderings of the same query cache separately.
func (e *Engine) prepareCachedStmt(stmt *sql.SelectStmt, approx bool, minP float64) (*prepared, bool, error) {
	e.mu.RLock()
	epoch := e.epoch
	e.mu.RUnlock()
	key := planKey{sql: stmt.String(), approx: approx, epoch: epoch, minP: minP}
	if prep, ok := e.cache.get(key); ok {
		return prep, true, nil
	}
	prep, err := e.prepareStmt(stmt, approx, minP)
	if err != nil {
		return nil, false, err
	}
	e.cache.put(key, prep)
	return prep, false, nil
}

// planFingerprint keys the query-history store: the contract-stripped
// canonical statement text, scoped by execution mode so exact actuals
// never correct approximate estimates (their plans differ).
func planFingerprint(stmt *sql.SelectStmt, approx bool) string {
	bare := *stmt
	bare.Contract = nil
	mode := "exact|"
	if approx {
		mode = "approx|"
	}
	return stats.Fingerprint(mode + bare.String())
}

// correctedRows builds the history-corrected cardinality map for the
// plan's top aggregate (group count) and its input (selectivity) from
// the learned actual/estimated ratios.
func correctedRows(prep *prepared, qh stats.QueryHistory) map[exec.PNode]float64 {
	agg := topAggOf(prep.physical)
	if agg == nil {
		return nil
	}
	corr := map[exec.PNode]float64{}
	if qh.GroupRatio > 0 {
		if est, ok := prep.ests[exec.PNode(agg)]; ok {
			corr[agg] = est * qh.GroupRatio
		}
	}
	if qh.SelRatio > 0 {
		if est, ok := prep.ests[agg.In]; ok {
			corr[agg.In] = est * qh.SelRatio
		}
	}
	if len(corr) == 0 {
		return nil
	}
	return corr
}

// topAggOf returns the plan's Top hash aggregate, or nil.
func topAggOf(root exec.PNode) *exec.PHashAgg {
	var top *exec.PHashAgg
	exec.WalkP(root, func(n exec.PNode) {
		if a, ok := n.(*exec.PHashAgg); ok && a.Top && top == nil {
			top = a
		}
	})
	return top
}

// recordHistory folds one successful run's actuals into the history
// store: processing rate, selectivity and group-count estimate ratios
// at the top aggregate, and sampler pass-rate ratio.
func (e *Engine) recordHistory(fp string, prep *prepared, res *exec.Result) {
	obs := stats.Observation{}
	if res.ExecSeconds > 0 && res.RowsProcessed > 0 {
		obs.RowsPerSec = float64(res.RowsProcessed) / res.ExecSeconds
	}
	if agg := topAggOf(prep.physical); agg != nil && res.Stats != nil {
		if op := res.Stats.Op(agg.In); op != nil {
			if est, ok := prep.ests[agg.In]; ok && est > 0 {
				if actual := op.Total().RowsOut; actual > 0 {
					obs.SelRatio = float64(actual) / est
				}
			}
		}
		if op := res.Stats.Op(exec.PNode(agg)); op != nil {
			if est, ok := prep.ests[exec.PNode(agg)]; ok && est > 0 {
				if actual := op.Total().RowsOut; actual > 0 {
					obs.GroupRatio = float64(actual) / est
				}
			}
		}
	}
	if res.Stats != nil {
		for _, op := range res.Stats.Ops() {
			if op.SamplerP <= 0 {
				continue
			}
			t := op.Total()
			if t.SamplerSeen > 0 {
				obs.PassRate = (float64(t.SamplerPassed) / float64(t.SamplerSeen)) / op.SamplerP
				break
			}
		}
	}
	e.history.Record(fp, obs)
	metrics.HistoryRecords.Add(1)
}

// prepared carries everything Plan/Exec produce before execution.
type prepared struct {
	logical        lplan.Node
	physical       exec.PNode
	ests           map[exec.PNode]float64
	sampled        bool
	unapproximable bool
	samplers       []SamplerInfo
	notes          []string
	analysis       *accuracy.Analysis
	optTime        time.Duration
}

func (e *Engine) prepare(query string, approx bool) (*prepared, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.prepareStmt(stmt, approx, 0)
}

// prepareStmt optimizes one statement. minP > 0 floors every sampler's
// probability at a contract ladder rung; MaxP and the plan checker's
// cap are raised alongside so a rung above the paper's 0.1 default
// still plans and verifies.
func (e *Engine) prepareStmt(stmt *sql.SelectStmt, approx bool, minP float64) (*prepared, error) {
	e.mu.RLock()
	cfg, opts, seed, planChecks, prune := e.cfg, e.opts, e.seed, e.planChecks, e.prune
	sampleCacheOn := e.sampleCache != nil
	e.mu.RUnlock()
	checker := plancheck.New()
	if minP > 0 {
		opts.MinP = minP
		if opts.MaxP < minP {
			opts.MaxP = minP
		}
		if checker.MaxP < minP {
			checker.MaxP = minP
		}
	}
	binder := catalog.NewBinder(e.cat)
	logical, err := binder.Bind(stmt)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	est := opt.NewEstimator(e.cat)
	cm := opt.NewCostModel(est, cfg)
	logical = opt.Normalize(logical, est)

	p := &prepared{logical: logical}
	var estCfg *exec.EstimatorConfig
	if approx {
		asalqa := core.New(est, cm, opts)
		res, err := asalqa.Place(logical)
		if err != nil {
			return nil, err
		}
		p.logical = res.Plan
		p.sampled = res.Sampled
		p.unapproximable = res.Unapproximable
		p.notes = res.Notes
		for _, s := range res.Samplers {
			p.samplers = append(p.samplers, SamplerInfo{
				Type:  s.Def.Type.String(),
				P:     s.Def.P,
				Delta: s.Def.Delta,
			})
		}
		if res.Sampled {
			an := accuracy.Analyze(res.Plan)
			p.analysis = an
			estCfg = &exec.EstimatorConfig{Type: an.Type, P: an.P, UniverseCols: an.UniverseCols}
			if an.Type == lplan.SamplerUniverse && len(an.UniverseCols) > 0 {
				// The subspace variance estimator keys on the universe
				// columns at the aggregate input; re-thread them past any
				// pruned projections.
				p.logical = opt.RetainColumns(p.logical, an.UniverseCols)
			}
		}
	}
	if planChecks {
		if err := checker.LogicalError(p.logical); err != nil {
			return nil, fmt.Errorf("quickr: optimized logical plan is invalid: %w", err)
		}
	}
	planner := &opt.Planner{CM: cm, EstCfg: estCfg, Seed: seed, Prune: prune, SampleCache: sampleCacheOn}
	physical, err := planner.Plan(p.logical)
	if err != nil {
		return nil, err
	}
	if planChecks {
		if err := checker.PhysicalError(physical); err != nil {
			return nil, fmt.Errorf("quickr: compiled physical plan is invalid: %w", err)
		}
	}
	if stmt.Contract != nil && stmt.Contract.ErrPct > 0 {
		// Contract-bearing sampled plans must carry an estimator — the
		// realized-CI check is meaningless without one. Always enforced,
		// independent of SetPlanChecks.
		if err := checker.ContractError(physical); err != nil {
			return nil, fmt.Errorf("quickr: contract plan is invalid: %w", err)
		}
	}
	p.physical = physical
	p.ests = planner.Ests
	p.optTime = time.Since(start)
	return p, nil
}

// Plan optimizes without executing and returns plan information.
func (e *Engine) Plan(query string, approx bool) (*PlanInfo, error) {
	p, err := e.prepare(query, approx)
	if err != nil {
		return nil, err
	}
	info := &PlanInfo{
		Logical:        lplan.Format(p.logical),
		Physical:       exec.FormatPlan(p.physical),
		Sampled:        p.sampled,
		Unapproximable: approx && p.unapproximable,
		Samplers:       p.samplers,
		Notes:          p.notes,
		OptimizeTime:   p.optTime,
	}
	if p.analysis != nil {
		info.AccuracyTrace = p.analysis.Trace
		info.EffectiveP = p.analysis.P
		info.RootSampler = p.analysis.Type.String()
	}
	return info, nil
}

// PlanInfo describes an optimized plan.
type PlanInfo struct {
	Logical        string
	Physical       string
	Sampled        bool
	Unapproximable bool
	Samplers       []SamplerInfo
	Notes          []string
	AccuracyTrace  []string
	EffectiveP     float64
	RootSampler    string
	OptimizeTime   time.Duration
}

// SamplerInfo summarizes one materialized sampler.
type SamplerInfo struct {
	Type  string
	P     float64
	Delta int
}
