module quickr

go 1.22
