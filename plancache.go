package quickr

import (
	"container/list"
	"sync"

	"quickr/internal/metrics"
)

// planCacheCap is the default bound on prepared plans kept per engine;
// Engine.SetPlanCacheCap overrides it.
const planCacheCap = 128

// planKey identifies one cached prepared plan: the parser-normalized
// SQL text (whitespace, casing and formatting differences collapse to
// one canonical rendering), the execution mode, and the engine's config
// epoch — any DDL or engine setting change bumps the epoch, so stale
// plans can never be served.
// Contract escalation retries the same statement with a forced minimum
// sampling probability; minP keys each ladder rung separately so every
// retry of a given rung is a cache hit (0 for ordinary queries).
type planKey struct {
	sql    string
	approx bool
	epoch  uint64
	minP   float64
}

// planCache is a small thread-safe LRU of prepared plans. Prepared
// plans are immutable after construction (the executor instantiates
// per-run samplers and metrics), so one cached plan may back any number
// of concurrent executions.
type planCache struct {
	mu sync.Mutex
	// guarded-by: mu
	items map[planKey]*list.Element
	// guarded-by: mu
	order *list.List // front = most recently used
	// guarded-by: mu
	cap int
}

type planEntry struct {
	key  planKey
	prep *prepared
}

func newPlanCache() *planCache {
	return &planCache{items: map[planKey]*list.Element{}, order: list.New(), cap: planCacheCap}
}

// setCap re-bounds the cache, evicting least-recently-used entries down
// to the new capacity. Values < 1 restore the default.
func (c *planCache) setCap(n int) {
	if n < 1 {
		n = planCacheCap
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = n
	c.evictOver()
}

// evictOver drops LRU entries until the cache fits its capacity.
// caller-holds: c.mu
func (c *planCache) evictOver() {
	for c.order.Len() > c.cap {
		el := c.order.Back()
		delete(c.items, el.Value.(*planEntry).key)
		c.order.Remove(el)
	}
}

func (c *planCache) get(k planKey) (*prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		metrics.PlanCacheMisses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	metrics.PlanCacheHits.Add(1)
	return el.Value.(*planEntry).prep, true
}

func (c *planCache) put(k planKey, p *prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*planEntry).prep = p
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&planEntry{key: k, prep: p})
	c.evictOver()
}

// purge drops every entry; called when the epoch bumps so plans for
// dead epochs free their memory promptly (correctness never depends on
// this — the epoch in the key already prevents stale hits).
func (c *planCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = map[planKey]*list.Element{}
	c.order.Init()
}
