package quickr_test

// Golden-file tests for the two operator-facing text surfaces: the
// EXPLAIN ANALYZE annotated plan (including the service footer with
// queued= / admitted_bytes= / pool_wait= fields) and the -stats JSON
// run report. Timing-dependent values are scrubbed before comparison so
// the goldens pin structure and deterministic counts, not wall clocks.
// Regenerate with:  go test -run TestGolden -update .

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"quickr"
)

var update = flag.Bool("update", false, "rewrite golden files")

const goldenSQL = `
	SELECT d_year, SUM(ss_ext_sales_price) AS total, COUNT(*) AS cnt
	FROM store_sales
	JOIN date_dim ON ss_sold_date_sk = d_date_sk
	GROUP BY d_year`

// scrubAnalyze zeroes the timing-dependent fields of the EXPLAIN
// ANALYZE text: wall clocks, queue/pool waits and the stolen-task count
// (which depends on scheduling and core count).
func scrubAnalyze(s string) string {
	for _, r := range []struct{ re, repl string }{
		{`wall=[0-9.]+ms`, `wall=<t>ms`},
		{`queued=[0-9.]+ms`, `queued=<t>ms`},
		{`pool_wait=[0-9.]+ms`, `pool_wait=<t>ms`},
		{`stolen=[0-9]+`, `stolen=<n>`},
	} {
		s = regexp.MustCompile(r.re).ReplaceAllString(s, r.repl)
	}
	return s
}

// scrubReport zeroes the timing- and scheduling-dependent fields of the
// JSON run report in place.
func scrubReport(rep *quickr.RunReport) {
	rep.Metrics.OptimizeSeconds = 0
	rep.Metrics.ExecSeconds = 0
	rep.Metrics.RowsPerSec = 0
	rep.Metrics.QueuedSeconds = 0
	rep.Metrics.PoolWaitSeconds = 0
	rep.Metrics.PoolStolen = 0
	for i := range rep.Operators {
		rep.Operators[i].WallMillis = 0
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if string(want) != string(got) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenExplainAnalyzePrune pins the operator-facing pruning
// surfaces: the "[prune k/n parts]" plan annotation, the EXPLAIN
// ANALYZE "[pruned scanned= pruned=]" line, and the run report's
// partitions_scanned/partitions_pruned counters, all with the
// partition-selection pass enabled.
// goldenPruneSQL is the q08-style seasonality query: at sf 0.2 its
// sampler lands directly over the 8-partition store_sales fact table,
// which the partition-selection pass can prune (goldenSQL's sampler
// lands on the 2-partition date_dim dimension, never eligible).
const goldenPruneSQL = `
	SELECT d_moy, SUM(ss_ext_sales_price) AS total, AVG(ss_sales_price) AS avg_price
	FROM store_sales
	JOIN date_dim ON ss_sold_date_sk = d_date_sk
	GROUP BY d_moy`

func TestGoldenExplainAnalyzePrune(t *testing.T) {
	eng := newTPCDSEngine(t, 0.2)
	eng.SetBatchSize(256)
	eng.SetSeed(1)
	eng.SetPrune(true)

	res, err := eng.ExecApprox(goldenPruneSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionsPruned == 0 {
		t.Fatalf("pruning did not fire on the golden query (scanned %d partitions)", res.PartitionsScanned)
	}
	checkGolden(t, "analyze_prune.golden", []byte(scrubAnalyze(res.AnalyzedPlan)))

	rep := res.RunReport(goldenPruneSQL, true)
	scrubReport(rep)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "stats_prune.golden", append(b, '\n'))
}

// TestGoldenContract pins the contract-facing text surfaces: the
// EXPLAIN ANALYZE "corrected=" annotations the learned history adds to
// operator estimates, and the run report's contract block (chosen p,
// attempts, cache hits, predicted/corrected/realized error). The query
// runs twice on one engine; the second (warm) run is the golden — it
// must show history_hit and a corrected prediction.
const goldenContractSQL = `
	SELECT ss_store_sk, SUM(ss_sales_price) AS total
	FROM store_sales
	GROUP BY ss_store_sk ERROR WITHIN 10% CONFIDENCE 95%`

func TestGoldenContract(t *testing.T) {
	eng := newTPCDSEngine(t, 1)
	eng.SetBatchSize(256)
	eng.SetSeed(1)

	if _, err := eng.ExecApprox(goldenContractSQL); err != nil {
		t.Fatal(err) // cold run primes the history store
	}
	res, err := eng.ExecApprox(goldenContractSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contract == nil || !res.Contract.HistoryHit {
		t.Fatalf("warm run must hit the history store, got %+v", res.Contract)
	}
	checkGolden(t, "analyze_contract.golden", []byte(scrubAnalyze(res.AnalyzedPlan)))

	rep := res.RunReport(goldenContractSQL, true)
	scrubReport(rep)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "stats_contract.golden", append(b, '\n'))
}

func TestGoldenExplainAnalyzeAndStats(t *testing.T) {
	eng := newTPCDSEngine(t, 0.01)
	eng.SetBatchSize(256)
	eng.SetSeed(1)

	for _, mode := range []struct {
		name   string
		approx bool
	}{{"exact", false}, {"approx", true}} {
		t.Run(mode.name, func(t *testing.T) {
			var res *quickr.Result
			var err error
			if mode.approx {
				res, err = eng.ExecApprox(goldenSQL)
			} else {
				res, err = eng.Exec(goldenSQL)
			}
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "analyze_"+mode.name+".golden", []byte(scrubAnalyze(res.AnalyzedPlan)))

			rep := res.RunReport(goldenSQL, mode.approx)
			scrubReport(rep)
			b, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "stats_"+mode.name+".golden", append(b, '\n'))
		})
	}
}
