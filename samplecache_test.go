package quickr_test

// The hot-sample-reuse battery: with a sample cache enabled, warm
// replays of the dashboard panels must be bit-identical to the cold lazy
// path, invalidation (data loads, engine reconfiguration) must never let
// a stale sample answer a query, and the cache must stay correct under
// concurrent hammers and byte-budget pressure — all clean under -race.

import (
	"fmt"
	"sync"
	"testing"

	"quickr"
	"quickr/internal/data"
	"quickr/internal/metrics"
	"quickr/internal/testutil"
	"quickr/internal/workload"
)

// newLogsEngine loads the web-log table the dashboard panels query.
func newLogsEngine(tb testing.TB, rows int) *quickr.Engine {
	tb.Helper()
	eng := quickr.New()
	eng.RegisterStored(data.Logs(rows, 777, 8))
	return eng
}

// dashboardRefs executes every panel once with the sample cache off and
// returns canonical per-panel references. Sampler seeds are a pure
// function of the plan, so these references are valid for every later
// run regardless of cache configuration.
func dashboardRefs(tb testing.TB, eng *quickr.Engine) map[string][]string {
	tb.Helper()
	refs := make(map[string][]string)
	sampled := 0
	for _, q := range workload.DashboardQueries() {
		res, err := eng.ExecApprox(q.SQL)
		if err != nil {
			tb.Fatalf("%s: %v", q.ID, err)
		}
		if res.Sampled {
			sampled++
		}
		refs[q.ID] = canonical(res)
	}
	if sampled == 0 {
		tb.Fatal("no dashboard panel sampled: the cache has nothing to exercise at this scale")
	}
	return refs
}

func TestSampleCacheWarmColdBitIdentical(t *testing.T) {
	eng := newLogsEngine(t, 50000)
	refs := dashboardRefs(t, eng)

	eng.SetSampleCache(64 << 20)
	misses0 := metrics.SampleCacheMisses.Load()
	for _, q := range workload.DashboardQueries() { // populate pass
		res, err := eng.ExecApprox(q.SQL)
		if err != nil {
			t.Fatalf("%s populate: %v", q.ID, err)
		}
		sameCanonical(t, q.ID+"/populate", refs[q.ID], canonical(res))
	}
	if metrics.SampleCacheMisses.Load() == misses0 {
		t.Fatal("populate pass recorded no cache misses")
	}
	hits0 := metrics.SampleCacheHits.Load()
	for _, q := range workload.DashboardQueries() { // warm pass
		res, err := eng.ExecApprox(q.SQL)
		if err != nil {
			t.Fatalf("%s warm: %v", q.ID, err)
		}
		sameCanonical(t, q.ID+"/warm", refs[q.ID], canonical(res))
	}
	if metrics.SampleCacheHits.Load() == hits0 {
		t.Fatal("warm pass recorded no cache hits: replays never served")
	}
}

// TestSampleCacheInsertInvalidation loads new rows into a table with a
// warm cache and requires the next query to see them: the cached entry's
// key embeds the table version, so the load strands it.
func TestSampleCacheInsertInvalidation(t *testing.T) {
	eng := newLogsEngine(t, 50000)
	eng.SetSampleCache(64 << 20)
	panel := workload.DashboardQueries()[0] // traffic by country

	var before []string
	for i := 0; i < 2; i++ { // second run is a warm replay
		res, err := eng.ExecApprox(panel.SQL)
		if err != nil {
			t.Fatal(err)
		}
		before = canonical(res)
	}

	// A load big enough that the panel's answer must change: a country
	// value the generator never emits, in bulk.
	var load [][]any
	for i := 0; i < 5000; i++ {
		load = append(load, []any{int64(i), int64(1), "/page/1", "ZZ", int64(200), int64(1000), 2.5})
	}
	if err := eng.Insert("weblogs", load); err != nil {
		t.Fatal(err)
	}

	warm, err := eng.ExecApprox(panel.SQL)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetSampleCache(0)
	fresh, err := eng.ExecApprox(panel.SQL)
	if err != nil {
		t.Fatal(err)
	}
	sameCanonical(t, "post-insert warm vs cache-off", canonical(fresh), canonical(warm))
	if fmt.Sprintf("%v", canonical(warm)) == fmt.Sprintf("%v", before) {
		t.Fatal("post-insert result identical to pre-insert: a stale cached sample answered the query")
	}
}

// TestConcurrentSampleCacheWarmHammer replays the dashboard panels from
// 32 concurrent submitters against one warm cache; every answer must be
// bit-identical to the cold reference. Under -race this is the cache's
// concurrency acceptance gate.
func TestConcurrentSampleCacheWarmHammer(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	eng := newLogsEngine(t, 50000)
	refs := dashboardRefs(t, eng)
	panels := workload.DashboardQueries()

	eng.SetSampleCache(64 << 20)
	for _, q := range panels { // populate
		if _, err := eng.ExecApprox(q.SQL); err != nil {
			t.Fatalf("%s populate: %v", q.ID, err)
		}
	}

	hits0 := metrics.SampleCacheHits.Load()
	const workers = 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		q := panels[w%len(panels)]
		wg.Add(1)
		go func(w int, q workload.Query) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				res, err := eng.ExecApprox(q.SQL)
				if err != nil {
					t.Errorf("worker %d %s: %v", w, q.ID, err)
					return
				}
				sameCanonical(t, fmt.Sprintf("worker %d round %d %s", w, round, q.ID), refs[q.ID], canonical(res))
			}
		}(w, q)
	}
	wg.Wait()
	if metrics.SampleCacheHits.Load() == hits0 {
		t.Error("no cache hits across 96 warm replays")
	}
}

// TestConcurrentSampleCacheReconfigure flips the cache on, off and into
// a rejecting 1-byte budget while 16 submitters keep querying. Every
// configuration change bumps the config epoch mid-populate and
// mid-replay; no answer may ever differ from the cold reference.
func TestConcurrentSampleCacheReconfigure(t *testing.T) {
	if testing.Short() {
		t.Skip("reconfigure hammer skipped in -short")
	}
	testutil.VerifyNoLeaks(t)
	eng := newLogsEngine(t, 20000)
	refs := dashboardRefs(t, eng)
	panels := workload.DashboardQueries()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		q := panels[w%len(panels)]
		wg.Add(1)
		go func(w int, q workload.Query) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := eng.ExecApprox(q.SQL)
				if err != nil {
					t.Errorf("worker %d %s: %v", w, q.ID, err)
					return
				}
				sameCanonical(t, fmt.Sprintf("worker %d round %d %s", w, round, q.ID), refs[q.ID], canonical(res))
			}
		}(w, q)
	}
	// The reconfiguration storm: budgets that enable, disable and starve
	// the cache (1 byte admits nothing — every populate is rejected and
	// every query falls back to the lazy fragment).
	for i := 0; i < 30; i++ {
		eng.SetSampleCache([]int64{64 << 20, 0, 1}[i%3])
	}
	close(stop)
	wg.Wait()
}

// TestSampleCacheStarvedBudgetFallsBack configures a budget no fragment
// fits in: the cache must reject every populate and serve nothing, with
// all answers still bit-identical to the reference.
func TestSampleCacheStarvedBudgetFallsBack(t *testing.T) {
	eng := newLogsEngine(t, 20000)
	refs := dashboardRefs(t, eng)

	eng.SetSampleCache(1)
	rejects0 := metrics.SampleCacheRejects.Load()
	hits0 := metrics.SampleCacheHits.Load()
	for round := 0; round < 2; round++ {
		for _, q := range workload.DashboardQueries() {
			res, err := eng.ExecApprox(q.SQL)
			if err != nil {
				t.Fatalf("%s: %v", q.ID, err)
			}
			sameCanonical(t, fmt.Sprintf("starved round %d %s", round, q.ID), refs[q.ID], canonical(res))
		}
	}
	if metrics.SampleCacheRejects.Load() == rejects0 {
		t.Error("starved budget recorded no admission rejects")
	}
	if metrics.SampleCacheHits.Load() != hits0 {
		t.Error("starved cache served a hit: an entry was admitted under a 1-byte budget")
	}
}
