// Quickstart: create tables, load rows, and compare an exact run with
// Quickr's approximate run — including per-group confidence intervals
// and the simulated cluster costs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"quickr"
)

func main() {
	eng := quickr.New()

	// A small star schema: sales fact + product dimension.
	must(eng.CreateTable("product", []quickr.Column{
		{Name: "p_id", Type: quickr.Int},
		{Name: "p_category", Type: quickr.String},
		{Name: "p_price", Type: quickr.Float},
	}, 2))
	must(eng.CreateTable("sales", []quickr.Column{
		{Name: "s_product", Type: quickr.Int},
		{Name: "s_customer", Type: quickr.Int},
		{Name: "s_units", Type: quickr.Int},
		{Name: "s_revenue", Type: quickr.Float},
	}, 8))
	eng.SetPrimaryKey("product", "p_id")

	categories := []string{"books", "games", "tools", "garden", "music"}
	var products [][]any
	for i := 0; i < 200; i++ {
		products = append(products, []any{i, categories[i%len(categories)], 5 + float64(i%40)})
	}
	must(eng.Insert("product", products))

	rng := rand.New(rand.NewSource(1))
	var sales [][]any
	for i := 0; i < 120000; i++ {
		p := rng.Intn(200)
		units := 1 + rng.Intn(5)
		sales = append(sales, []any{p, rng.Intn(5000), units, float64(units) * (5 + float64(p%40))})
	}
	must(eng.Insert("sales", sales))

	query := `
		SELECT p_category, SUM(s_revenue) AS revenue, COUNT(*) AS orders
		FROM sales JOIN product ON s_product = p_id
		GROUP BY p_category
		ORDER BY revenue DESC`

	exact, err := eng.Exec(query)
	must(err)
	fmt.Println("=== exact answer ===")
	fmt.Print(exact.Format(0))
	fmt.Printf("machine-time: %.0f  runtime: %.0f  passes over data: %.2f\n\n",
		exact.Metrics.MachineHours, exact.Metrics.Runtime, exact.Metrics.Passes)

	approx, err := eng.ExecApprox(query)
	must(err)
	fmt.Println("=== approximate answer (Quickr) ===")
	fmt.Print(approx.Format(0))
	fmt.Printf("sampled: %v  samplers: %+v\n", approx.Sampled, approx.Samplers)
	fmt.Printf("machine-time: %.0f (%.2fx less)  runtime: %.0f  passes: %.2f\n\n",
		approx.Metrics.MachineHours,
		exact.Metrics.MachineHours/approx.Metrics.MachineHours,
		approx.Metrics.Runtime, approx.Metrics.Passes)

	fmt.Println("=== per-group 95% confidence intervals ===")
	for _, g := range approx.Estimates {
		fmt.Printf("%-8v revenue %12.0f ± %-10.0f (%d sample rows)\n",
			g.Key[0], toF(g.Values[0]), g.CI95[0], g.SampleRows)
	}
}

func toF(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	}
	return 0
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
