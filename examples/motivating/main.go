// Motivating: the paper's Figure 1 walk-through. Per item color and
// year, total profit from store sales and the number of unique
// customers who purchased and returned from stores and purchased from
// catalog — three large fact tables joined on shared keys plus two
// dimension FK joins.
//
// Quickr universe-samples the fact tables on the customer key: both
// join inputs pick the same hash subspace, so the joins stay complete
// within the subspace, and even COUNT(DISTINCT customer) — the very
// column being subsampled — scales back up by 1/p (Table 8). The
// example also shows how small query changes move the plan, mirroring
// §2: dropping the fact–fact joins switches to a uniform sampler, and
// grouping by a per-day column makes the query unapproximable.
package main

import (
	"fmt"
	"log"

	"quickr"
	"quickr/internal/data"
)

func main() {
	cfg := data.DefaultTPCDS()
	cfg.ScaleFactor = 10 // the Fig.1 plan needs enough customers per group
	fmt.Println("generating TPC-DS-like data at scale factor 10 ...")
	ds := data.GenerateTPCDS(cfg)
	eng := quickr.New()
	for name, t := range ds.Tables {
		eng.RegisterStored(t, ds.PKs[name]...)
	}

	fig1 := `
		SELECT i_color, d_year, SUM(ss_net_profit) AS profit,
		       COUNT(DISTINCT ss_customer_sk) AS customers
		FROM store_sales
		JOIN store_returns ON ss_customer_sk = sr_customer_sk AND ss_item_sk = sr_item_sk
		JOIN catalog_sales ON ss_customer_sk = cs_bill_customer_sk
		JOIN item ON ss_item_sk = i_item_sk
		JOIN date_dim ON ss_sold_date_sk = d_date_sk
		GROUP BY i_color, d_year`

	show(eng, "Figure 1 query (3 fact tables)", fig1)

	// §2: "if the query only had store_sales ... Quickr would prefer a
	// uniform sampler".
	show(eng, "variant: store_sales only", `
		SELECT i_color, d_year, SUM(ss_net_profit) AS profit
		FROM store_sales
		JOIN item ON ss_item_sk = i_item_sk
		JOIN date_dim ON ss_sold_date_sk = d_date_sk
		GROUP BY i_color, d_year`)

	// §2: "if the answer has one group per day ... Quickr may declare
	// the query unapproximable".
	show(eng, "variant: grouped per day", `
		SELECT i_color, d_date, SUM(ss_net_profit) AS profit
		FROM store_sales
		JOIN item ON ss_item_sk = i_item_sk
		JOIN date_dim ON ss_sold_date_sk = d_date_sk
		GROUP BY i_color, d_date`)
}

func show(eng *quickr.Engine, title, sql string) {
	fmt.Println("\n=== " + title + " ===")
	info, err := eng.Plan(sql, true)
	if err != nil {
		log.Fatal(err)
	}
	if info.Unapproximable {
		fmt.Println("ASALQA: unapproximable — plan has no samplers")
		for _, n := range info.Notes {
			fmt.Println("  note:", n)
		}
		return
	}
	fmt.Printf("samplers: ")
	for _, s := range info.Samplers {
		fmt.Printf("%s(p=%.3g) ", s.Type, s.P)
	}
	fmt.Println()

	exact, err := eng.Exec(sql)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := eng.ExecApprox(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine-time: exact %.0f vs quickr %.0f (%.2fx)\n",
		exact.Metrics.MachineHours, approx.Metrics.MachineHours,
		exact.Metrics.MachineHours/approx.Metrics.MachineHours)
	fmt.Printf("groups: exact %d, quickr %d\n", len(exact.Rows), len(approx.Rows))
	fmt.Println("first rows (approximate):")
	fmt.Print(approx.Format(4))
}
