// Dashboard: the paper's first headline use case — "queries that
// analyze logs to generate aggregated dashboard reports, if sped up,
// would increase the refresh rate of dashboards at no extra cost" (§1).
//
// This example refreshes a small operations dashboard (traffic by
// country, error rates, latency SLOs, top pages) over a synthetic web
// log, once exactly and once through Quickr, and reports how many more
// refreshes per unit of cluster time the approximate plans afford.
package main

import (
	"fmt"
	"log"

	"quickr"
	"quickr/internal/data"
)

var panels = []struct {
	name string
	sql  string
}{
	{"traffic by country", `
		SELECT log_country, COUNT(*) AS hits, SUM(log_bytes) AS bytes
		FROM weblogs GROUP BY log_country`},
	{"error rate by status", `
		SELECT log_status, COUNT(*) AS hits, AVG(log_latency_ms) AS avg_latency
		FROM weblogs GROUP BY log_status`},
	{"latency SLO buckets", `
		SELECT log_country,
		       COUNTIF(log_latency_ms < 50) AS fast,
		       COUNTIF(log_latency_ms >= 50 AND log_latency_ms < 200) AS ok,
		       COUNTIF(log_latency_ms >= 200) AS slow
		FROM weblogs GROUP BY log_country`},
	{"top pages", `
		SELECT log_url, COUNT(*) AS hits
		FROM weblogs GROUP BY log_url ORDER BY hits DESC LIMIT 10`},
}

func main() {
	eng := quickr.New()
	eng.RegisterStored(data.Logs(400000, 2024, 8))

	var exactCost, approxCost float64
	fmt.Println("panel                      exact-cost  quickr-cost   gain  sampled-with")
	for _, p := range panels {
		exact, err := eng.Exec(p.sql)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		approx, err := eng.ExecApprox(p.sql)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		exactCost += exact.Metrics.MachineHours
		approxCost += approx.Metrics.MachineHours
		sampler := "(exact: unapproximable)"
		if approx.Sampled {
			sampler = fmt.Sprintf("%s p=%.3g", approx.Samplers[0].Type, approx.Samplers[0].P)
		}
		fmt.Printf("%-26s %10.0f %12.0f %5.2fx  %s\n",
			p.name, exact.Metrics.MachineHours, approx.Metrics.MachineHours,
			exact.Metrics.MachineHours/approx.Metrics.MachineHours, sampler)
	}
	fmt.Printf("\nwhole dashboard: %.2fx cheaper -> %.1f refreshes in the budget of 1 exact refresh\n",
		exactCost/approxCost, exactCost/approxCost)

	// Show one panel's approximate content with confidence intervals.
	approx, err := eng.ExecApprox(panels[0].sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntraffic panel (approximate, top 5 by hits):")
	fmt.Print(approx.Format(5))
}
