// Dashboard: the paper's first headline use case — "queries that
// analyze logs to generate aggregated dashboard reports, if sped up,
// would increase the refresh rate of dashboards at no extra cost" (§1).
//
// This example drives the serving shape a real dashboard produces: N
// panels over a shared web log, each refreshed M times by concurrent
// submitters. It first reports the per-refresh cluster-cost gain of
// lazy approximation (the paper's claim), then replays the whole
// refresh workload three ways — exact, cold-approximate (samplers
// re-scan the log on every refresh) and cached-approximate (hot-sample
// reuse replays materialized sampler output) — and reports the
// throughput of each. The same workload backs `quickr-bench
// -dashboard`, whose DASH_<exp>.json report CI gates.
//
// Usage:
//
//	dashboard [-rows 400000] [-refreshes 20] [-workers 8] [-cache 67108864]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"quickr"
	"quickr/internal/data"
	"quickr/internal/workload"
)

func main() {
	rows := flag.Int("rows", 400000, "web log rows to generate")
	refreshes := flag.Int("refreshes", 20, "refreshes per panel in the timed workload")
	workers := flag.Int("workers", 8, "concurrent refresh submitters")
	cache := flag.Int64("cache", 64<<20, "sample-cache byte budget for the cached pass")
	flag.Parse()

	eng := quickr.New()
	eng.RegisterStored(data.Logs(*rows, 2024, 8))
	panels := workload.DashboardQueries()

	// Part 1: the paper's per-refresh cost argument, one exact and one
	// approximate execution per panel.
	var exactCost, approxCost float64
	fmt.Println("panel                                      exact-cost  quickr-cost   gain  sampled-with")
	for _, p := range panels {
		exact, err := eng.Exec(p.SQL)
		if err != nil {
			log.Fatalf("%s: %v", p.ID, err)
		}
		approx, err := eng.ExecApprox(p.SQL)
		if err != nil {
			log.Fatalf("%s: %v", p.ID, err)
		}
		exactCost += exact.Metrics.MachineHours
		approxCost += approx.Metrics.MachineHours
		sampler := "(exact: unapproximable)"
		if approx.Sampled {
			sampler = fmt.Sprintf("%s p=%.3g", approx.Samplers[0].Type, approx.Samplers[0].P)
		}
		fmt.Printf("%-42s %10.0f %12.0f %5.2fx  %s\n",
			p.Desc, exact.Metrics.MachineHours, approx.Metrics.MachineHours,
			exact.Metrics.MachineHours/approx.Metrics.MachineHours, sampler)
	}
	fmt.Printf("\nper refresh: %.2fx cheaper -> %.1f approximate refreshes in the budget of 1 exact refresh\n",
		exactCost/approxCost, exactCost/approxCost)

	// Part 2: the repeated-refresh workload, timed. Every mode runs the
	// identical job list: panels × refreshes, fanned out over workers.
	var jobs []string
	for r := 0; r < *refreshes; r++ {
		for _, p := range panels {
			jobs = append(jobs, p.SQL)
		}
	}
	hammer := func(run func(string) error) float64 {
		start := time.Now()
		var wg sync.WaitGroup
		next := make(chan string)
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sql := range next {
					if err := run(sql); err != nil {
						log.Fatal(err)
					}
				}
			}()
		}
		for _, sql := range jobs {
			next <- sql
		}
		close(next)
		wg.Wait()
		return float64(len(jobs)) / time.Since(start).Seconds()
	}
	exec := func(sql string) error { _, err := eng.Exec(sql); return err }
	execApprox := func(sql string) error { _, err := eng.ExecApprox(sql); return err }
	warm := func(run func(string) error) {
		for _, p := range panels {
			if err := run(p.SQL); err != nil {
				log.Fatalf("%s: %v", p.ID, err)
			}
		}
	}

	fmt.Printf("\nrefresh workload: %d panels x %d refreshes, %d workers\n", len(panels), *refreshes, *workers)
	warm(exec)
	exactQPS := hammer(exec)
	fmt.Printf("  exact:             %8.1f refreshes/sec\n", exactQPS)

	warm(execApprox)
	coldQPS := hammer(execApprox)
	fmt.Printf("  cold approximate:  %8.1f refreshes/sec (%.2fx exact)\n", coldQPS, coldQPS/exactQPS)

	eng.SetSampleCache(*cache)
	warm(execApprox) // populates the sample cache
	cachedQPS := hammer(execApprox)
	fmt.Printf("  cached approximate:%8.1f refreshes/sec (%.2fx exact, %.2fx cold)\n",
		cachedQPS, cachedQPS/exactQPS, cachedQPS/coldQPS)

	// Show one panel's approximate content with confidence intervals —
	// identical bits whether it came from the cache or the lazy path.
	approx, err := eng.ExecApprox(panels[0].SQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntraffic panel (approximate, top 5 by hits):")
	fmt.Print(approx.Format(5))
}
