// K-means: the paper's second headline use case — "machine learning
// queries that build models by iterating over datasets (e.g., k-means)
// can tolerate approximations in their early iterations" (§1).
//
// Each k-means iteration is an aggregation query: assign points to the
// nearest centroid, then average per cluster. This example runs the
// early iterations through Quickr's uniform sampler and only the final
// polish iterations exactly, and compares cost and convergence against
// an all-exact run.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"quickr/internal/sampler"
	"quickr/internal/table"
)

const (
	k          = 4
	points     = 200000
	iterations = 8
	exactTail  = 2 // final iterations run exactly
	sampleP    = 0.02
)

type pt struct{ x, y float64 }

func main() {
	rng := rand.New(rand.NewSource(11))
	truth := []pt{{0, 0}, {8, 1}, {4, 9}, {-5, 6}}
	data := make([]pt, points)
	for i := range data {
		c := truth[rng.Intn(k)]
		data[i] = pt{c.x + rng.NormFloat64(), c.y + rng.NormFloat64()}
	}

	exactCents, exactRows := run(data, false, rng)
	approxCents, approxRows := run(data, true, rng)

	fmt.Printf("rows touched: exact %d, approx-early %d (%.1fx fewer)\n",
		exactRows, approxRows, float64(exactRows)/float64(approxRows))
	fmt.Printf("%-10s %-22s %-22s\n", "cluster", "all-exact centroid", "sampled-early centroid")
	for i := 0; i < k; i++ {
		fmt.Printf("%-10d (%6.3f, %6.3f)       (%6.3f, %6.3f)\n",
			i, exactCents[i].x, exactCents[i].y, approxCents[i].x, approxCents[i].y)
	}
	var drift float64
	for i := 0; i < k; i++ {
		drift += math.Hypot(exactCents[i].x-approxCents[i].x, exactCents[i].y-approxCents[i].y)
	}
	fmt.Printf("total centroid drift vs exact: %.4f\n", drift/k)
}

// run performs k-means; with approximate=true, early iterations stream
// points through Quickr's uniform sampler and average with
// Horvitz–Thompson weights, exactly like a sampled GROUP BY.
func run(data []pt, approximate bool, rng *rand.Rand) ([]pt, int64) {
	cents := []pt{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	var rowsTouched int64
	for iter := 0; iter < iterations; iter++ {
		useSample := approximate && iter < iterations-exactTail
		var sm sampler.Sampler
		if useSample {
			sm = sampler.NewUniform(sampleP, uint64(iter)*977+13)
		}
		sumX := make([]float64, k)
		sumY := make([]float64, k)
		sumW := make([]float64, k)
		for _, p := range data {
			w := 1.0
			if useSample {
				pass, wgt := sm.Admit(table.Row{table.NewFloat(p.x)}, 1)
				if !pass {
					continue
				}
				w = wgt
			}
			rowsTouched++
			best, bd := 0, math.Inf(1)
			for c := range cents {
				d := math.Hypot(p.x-cents[c].x, p.y-cents[c].y)
				if d < bd {
					bd, best = d, c
				}
			}
			sumX[best] += w * p.x
			sumY[best] += w * p.y
			sumW[best] += w
		}
		for c := range cents {
			if sumW[c] > 0 {
				cents[c] = pt{sumX[c] / sumW[c], sumY[c] / sumW[c]}
			}
		}
	}
	return cents, rowsTouched
}
