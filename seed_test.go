package quickr_test

import (
	"reflect"
	"testing"

	"quickr"
)

func seedEngine(t *testing.T, seed uint64) *quickr.Engine {
	t.Helper()
	eng := quickr.New()
	eng.SetSeed(seed)
	if err := eng.CreateTable("t", []quickr.Column{
		{Name: "k", Type: quickr.Int},
		{Name: "v", Type: quickr.Float},
	}, 4); err != nil {
		t.Fatal(err)
	}
	rows := make([][]any, 0, 20000)
	for i := 0; i < 20000; i++ {
		rows = append(rows, []any{int64(i % 13), float64(i%97) + 0.5})
	}
	if err := eng.Insert("t", rows); err != nil {
		t.Fatal(err)
	}
	return eng
}

const seedQuery = "SELECT k, SUM(v), COUNT(*) FROM t GROUP BY k"

// Sampled runs must be bit-for-bit reproducible for a given engine
// seed: the planner derives every sampler instance's stream from the
// configured seed, never from global randomness.
func TestExecApproxDeterministicForSeed(t *testing.T) {
	runWith := func(seed uint64) *quickr.Result {
		res, err := seedEngine(t, seed).ExecApprox(seedQuery)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Sampled {
			t.Skip("plan not sampled at this scale; nothing to compare")
		}
		return res
	}
	a, b := runWith(12345), runWith(12345)
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("same seed produced different rows:\n%v\nvs\n%v", a.Rows, b.Rows)
	}
	if !reflect.DeepEqual(a.Estimates, b.Estimates) {
		t.Fatal("same seed produced different estimates")
	}
}

// Seed 0 (the default) must keep reproducing the historical sampler
// stream, so pre-existing goldens and experiment numbers are stable.
func TestSeedZeroMatchesDefault(t *testing.T) {
	def := quickr.New()
	eng := seedEngine(t, 0)
	_ = def // the default engine's seed is the zero value already
	a, err := eng.ExecApprox(seedQuery)
	if err != nil {
		t.Fatal(err)
	}
	b, err := seedEngine(t, 0).ExecApprox(seedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatal("seed 0 runs diverged")
	}
}
