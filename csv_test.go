package quickr

import (
	"strings"
	"testing"
)

const csvData = `id,city,amount,vip
1,paris,10.5,true
2,oslo,3.25,false
3,paris,7.0,true
4,,2.0,false
`

func TestLoadCSVInferred(t *testing.T) {
	eng := New()
	n, err := eng.LoadCSV("orders", strings.NewReader(csvData), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("loaded %d rows", n)
	}
	res, err := eng.Exec("SELECT city, SUM(amount) AS total, COUNTIF(vip) AS vips FROM orders GROUP BY city")
	if err != nil {
		t.Fatal(err)
	}
	byCity := map[any][2]float64{}
	for _, r := range res.Rows {
		byCity[r[0]] = [2]float64{r[1].(float64), float64(r[2].(int64))}
	}
	if got := byCity["paris"]; got != [2]float64{17.5, 2} {
		t.Errorf("paris: %v", got)
	}
	if got := byCity["oslo"]; got != [2]float64{3.25, 0} {
		t.Errorf("oslo: %v", got)
	}
	// Empty field became NULL and forms its own non-group (NULL key).
	if len(res.Rows) != 3 {
		t.Errorf("groups: %v", res.Rows)
	}
}

func TestLoadCSVExplicitSchema(t *testing.T) {
	eng := New()
	cols := []Column{
		{Name: "id", Type: Int},
		{Name: "city", Type: String},
		{Name: "amount", Type: Float},
		{Name: "vip", Type: Bool},
	}
	if _, err := eng.LoadCSV("orders", strings.NewReader(csvData), cols, 1); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Exec("SELECT COUNT(*) AS n FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 4 {
		t.Errorf("count: %v", res.Rows)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	eng := New()
	if _, err := eng.LoadCSV("bad", strings.NewReader("a,b\n1,notanumber\n"),
		[]Column{{Name: "a", Type: Int}, {Name: "b", Type: Int}}, 1); err == nil {
		t.Error("type mismatch must error")
	}
	if _, err := eng.LoadCSV("short", strings.NewReader("a,b\n1,2\n"),
		[]Column{{Name: "a", Type: Int}}, 1); err == nil {
		t.Error("arity mismatch must error")
	}
	if _, err := eng.LoadCSV("empty", strings.NewReader(""), nil, 1); err == nil {
		t.Error("empty input must error")
	}
}
