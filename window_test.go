package quickr

import (
	"testing"
)

// buildWinEngine creates a small table for window tests.
func buildWinEngine(t *testing.T) *Engine {
	t.Helper()
	eng := New()
	must(t, eng.CreateTable("scores", []Column{
		{Name: "team", Type: String},
		{Name: "player", Type: String},
		{Name: "pts", Type: Int},
	}, 3))
	must(t, eng.Insert("scores", [][]any{
		{"red", "a", 10},
		{"red", "b", 30},
		{"red", "c", 30},
		{"red", "d", 5},
		{"blue", "e", 7},
		{"blue", "f", 9},
	}))
	return eng
}

func TestWindowRowNumberAndRank(t *testing.T) {
	eng := buildWinEngine(t)
	res, err := eng.Exec(`
		SELECT team, player, pts,
		       ROW_NUMBER() OVER (PARTITION BY team ORDER BY pts DESC) AS rn,
		       RANK() OVER (PARTITION BY team ORDER BY pts DESC) AS rk
		FROM scores
		ORDER BY team, 4`)
	must(t, err)
	if len(res.Rows) != 6 {
		t.Fatalf("rows: %v", res.Rows)
	}
	// blue: f(9)=1, e(7)=2; red: b,c tie at 30 -> ranks 1,1 then d? no:
	// rn 1,2 ranks 1,1; then 10 -> rank 3; 5 -> rank 4.
	type rec struct {
		rn, rk int64
	}
	got := map[string]rec{}
	for _, r := range res.Rows {
		got[r[1].(string)] = rec{rn: r[3].(int64), rk: r[4].(int64)}
	}
	if got["f"].rk != 1 || got["e"].rk != 2 {
		t.Errorf("blue ranks: %+v", got)
	}
	if got["b"].rk != 1 || got["c"].rk != 1 {
		t.Errorf("tied ranks must both be 1: %+v", got)
	}
	if got["a"].rk != 3 || got["d"].rk != 4 {
		t.Errorf("post-tie ranks: %+v", got)
	}
	if (got["b"].rn == got["c"].rn) || got["b"].rn > 2 || got["c"].rn > 2 {
		t.Errorf("row numbers must be distinct 1,2 for the tie: %+v", got)
	}
}

func TestWindowRunningAndFullAggregates(t *testing.T) {
	eng := buildWinEngine(t)
	res, err := eng.Exec(`
		SELECT player, pts,
		       SUM(pts) OVER (PARTITION BY team ORDER BY pts) AS running,
		       SUM(pts) OVER (PARTITION BY team) AS total,
		       AVG(pts) OVER (PARTITION BY team) AS avg_pts,
		       COUNT(*) OVER (PARTITION BY team) AS n
		FROM scores`)
	must(t, err)
	byPlayer := map[string][]any{}
	for _, r := range res.Rows {
		byPlayer[r[0].(string)] = r
	}
	// red totals: 75 over 4 rows.
	if byPlayer["a"][3].(int64) != 75 || byPlayer["a"][5].(int64) != 4 {
		t.Errorf("red totals: %v", byPlayer["a"])
	}
	if avg := byPlayer["a"][4].(float64); avg != 18.75 {
		t.Errorf("red avg: %v", avg)
	}
	// running sums ascending: d(5)=5, a(10)=15, b&c tie at 30: both see 75.
	if byPlayer["d"][2].(int64) != 5 || byPlayer["a"][2].(int64) != 15 {
		t.Errorf("running: d=%v a=%v", byPlayer["d"][2], byPlayer["a"][2])
	}
	if byPlayer["b"][2].(int64) != 75 || byPlayer["c"][2].(int64) != 75 {
		t.Errorf("peers must share the running frame: b=%v c=%v", byPlayer["b"][2], byPlayer["c"][2])
	}
}

func TestWindowWithoutPartition(t *testing.T) {
	eng := buildWinEngine(t)
	res, err := eng.Exec(`SELECT player, ROW_NUMBER() OVER (ORDER BY pts DESC, player) AS rn FROM scores`)
	must(t, err)
	rns := map[int64]bool{}
	for _, r := range res.Rows {
		rns[r[1].(int64)] = true
	}
	for i := int64(1); i <= 6; i++ {
		if !rns[i] {
			t.Fatalf("missing row number %d: %v", i, res.Rows)
		}
	}
}

func TestWindowErrors(t *testing.T) {
	eng := buildWinEngine(t)
	bad := []string{
		"SELECT team, SUM(pts), RANK() OVER (ORDER BY pts) FROM scores GROUP BY team",
		"SELECT SUMIF(pts > 1, pts) OVER (ORDER BY pts) FROM scores",
		"SELECT MEDIAN(pts) OVER (ORDER BY pts) FROM scores",
	}
	for _, q := range bad {
		if _, err := eng.Exec(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestWindowQueryUnapproximable(t *testing.T) {
	// Sampling under a window changes ROW_NUMBER/RANK semantics; ASALQA
	// must leave window queries exact.
	eng := buildWinEngine(t)
	res, err := eng.ExecApprox(`SELECT player, RANK() OVER (ORDER BY pts DESC) AS rk FROM scores`)
	must(t, err)
	if res.Sampled {
		t.Error("window queries must not be sampled")
	}
}
