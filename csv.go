package quickr

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"quickr/internal/table"
)

// LoadCSV creates table name from CSV data with a header row, inferring
// or checking columns against cols (pass nil to take names from the
// header and infer types from the first data row: integers, floats,
// booleans, strings). Rows spread round-robin over parts partitions.
// It returns the number of rows loaded.
func (e *Engine) LoadCSV(name string, r io.Reader, cols []Column, parts int) (int, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("quickr: reading CSV header: %w", err)
	}
	header = append([]string{}, header...)

	var first []string
	if cols == nil {
		rec, err := cr.Read()
		if err == io.EOF {
			return 0, fmt.Errorf("quickr: cannot infer column types from an empty CSV")
		}
		if err != nil {
			return 0, err
		}
		first = append([]string{}, rec...)
		cols = make([]Column, len(header))
		for i, h := range header {
			cols[i] = Column{Name: h, Type: inferColType(first[i])}
		}
	} else if len(cols) != len(header) {
		return 0, fmt.Errorf("quickr: CSV has %d columns, schema expects %d", len(header), len(cols))
	}

	if err := e.CreateTable(name, cols, parts); err != nil {
		return 0, err
	}
	tbl, err := e.cat.Table(name)
	if err != nil {
		return 0, err
	}

	n := 0
	appendRec := func(rec []string) error {
		row := make(table.Row, len(cols))
		for i, field := range rec {
			v, err := parseValue(field, cols[i].Type)
			if err != nil {
				return fmt.Errorf("quickr: row %d column %s: %w", n+1, cols[i].Name, err)
			}
			row[i] = v
		}
		tbl.Append(n, row)
		n++
		return nil
	}
	if first != nil {
		if err := appendRec(first); err != nil {
			return n, err
		}
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		if err := appendRec(rec); err != nil {
			return n, err
		}
	}
	return n, nil
}

func inferColType(field string) ColType {
	if _, err := strconv.ParseInt(field, 10, 64); err == nil {
		return Int
	}
	if _, err := strconv.ParseFloat(field, 64); err == nil {
		return Float
	}
	switch strings.ToLower(field) {
	case "true", "false":
		return Bool
	}
	return String
}

func parseValue(field string, t ColType) (table.Value, error) {
	if field == "" || strings.EqualFold(field, "null") {
		return table.Null, nil
	}
	switch t {
	case Int:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return table.Value{}, err
		}
		return table.NewInt(n), nil
	case Float:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return table.Value{}, err
		}
		return table.NewFloat(f), nil
	case Bool:
		b, err := strconv.ParseBool(strings.ToLower(field))
		if err != nil {
			return table.Value{}, err
		}
		return table.NewBool(b), nil
	default:
		return table.NewString(field), nil
	}
}
