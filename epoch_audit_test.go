package quickr

import (
	"reflect"
	"strings"
	"testing"
)

// TestSetterEpochAudit enumerates every Engine.Set* method by
// reflection and asserts each one bumps the plan-cache epoch: a setter
// that forgets to bump serves stale cached plans after a configuration
// change. New knobs (contract/history included) are covered
// automatically as they are added.
func TestSetterEpochAudit(t *testing.T) {
	eng := New()
	typ := reflect.TypeOf(eng)
	audited := 0
	for i := 0; i < typ.NumMethod(); i++ {
		m := typ.Method(i)
		if !strings.HasPrefix(m.Name, "Set") {
			continue
		}
		audited++
		eng.mu.RLock()
		before := eng.epoch
		eng.mu.RUnlock()

		// Call with zero values for every parameter (variadic tails
		// omitted); zero arguments are always accepted by setters.
		mv := reflect.ValueOf(eng).MethodByName(m.Name)
		mt := mv.Type()
		numIn := mt.NumIn()
		if mt.IsVariadic() {
			numIn--
		}
		args := make([]reflect.Value, numIn)
		for j := 0; j < numIn; j++ {
			args[j] = reflect.Zero(mt.In(j))
		}
		mv.Call(args)

		eng.mu.RLock()
		after := eng.epoch
		eng.mu.RUnlock()
		if after <= before {
			t.Errorf("%s did not bump the plan-cache epoch (%d -> %d): stale cached plans would be served",
				m.Name, before, after)
		}
	}
	// The audit must actually cover the engine's knob surface; if the
	// count shrinks someone renamed setters away from the Set* pattern
	// and this audit silently stopped guarding them.
	if audited < 11 {
		t.Fatalf("audited only %d Set* methods, expected at least 11", audited)
	}
}

// TestContractKnobsInvalidateCache pins the audit's purpose end to end:
// a cached contract plan must not survive a contract-knob change.
func TestContractKnobsInvalidateCache(t *testing.T) {
	eng := New()
	if err := eng.CreateTable("t", []Column{{Name: "g", Type: Int}, {Name: "v", Type: Float}}, 2); err != nil {
		t.Fatal(err)
	}
	rows := make([][]any, 0, 400)
	for i := 0; i < 400; i++ {
		rows = append(rows, []any{i % 4, float64(i%7) + 1})
	}
	if err := eng.Insert("t", rows); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT g, SUM(v) FROM t GROUP BY g"
	if _, err := eng.Exec(q); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlanCached {
		t.Fatal("second identical run should be a plan-cache hit")
	}
	eng.SetContractMaxEscalations(5)
	res, err = eng.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCached {
		t.Fatal("SetContractMaxEscalations must invalidate cached plans")
	}
	eng.SetHistoryLearning(false)
	res, err = eng.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCached {
		t.Fatal("SetHistoryLearning must invalidate cached plans")
	}
}
